"""Per-package policy: which files the soundness pass checks, with
which rules.

The defaults encode the repository's sound-path discipline: every bound
computed in ``repro.intervals``, ``repro.ode``, ``repro.sets`` and
``repro.verify`` must go through the directed-rounding helpers, so those
packages are checked with the full rule set; the rest of the tree
(training code, CLI, observability, experiments) is skipped.
``repro/intervals/rounding.py`` is excluded — it *implements* the
wrappers, so raw ``math.nextafter`` is its business.

Projects override the defaults from ``pyproject.toml``::

    [tool.repro.soundness]
    include = ["repro/intervals", "repro/ode"]
    exclude = ["repro/intervals/rounding.py"]

    [tool.repro.soundness.package-rules]
    "repro/verify" = { disable = ["S005"] }

Path patterns are segment sequences matched anywhere in the file path,
so ``repro/intervals`` matches both ``src/repro/intervals/box.py`` and
an installed ``repro/intervals/box.py``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

from .model import CheckError

__all__ = [
    "DEFAULT_INCLUDE",
    "DEFAULT_EXCLUDE",
    "DEFAULT_PACKAGE_DISABLE",
    "DEFAULT_CONCURRENCY_INCLUDE",
    "DEFAULT_SANCTIONED_WRITERS",
    "Policy",
    "load_policy",
]

DEFAULT_INCLUDE = (
    "repro/intervals",
    "repro/ode",
    "repro/sets",
    "repro/verify",
    "repro/core/reach.py",
    "repro/core/system.py",
    "repro/acasxu",
)

DEFAULT_EXCLUDE = ("repro/intervals/rounding.py",)

#: ``repro/intervals/batched.py`` is the sanctioned wrapper module for
#: batched endpoint arithmetic — S006 exists to funnel raw ufunc math
#: *into* it, so the rule is off there by default (mirroring how
#: ``rounding.py`` is excluded outright). The same goes for S008: the
#: structure-of-arrays layout *is* raw (lo, hi) arrays by design.
DEFAULT_PACKAGE_DISABLE = {"repro/intervals/batched.py": ("S006", "S008")}

#: Where the concurrency pass (C001-C005) runs: the fork pool, the
#: campaign drivers, the live-telemetry layer and the distributed
#: control plane (coordinator event loop + node agent).
DEFAULT_CONCURRENCY_INCLUDE = (
    "repro/core/supervisor.py",
    "repro/core/runner.py",
    "repro/core/checkpoint.py",
    "repro/core/coordinator.py",
    "repro/core/node.py",
    "repro/obs/live.py",
)

#: Functions allowed to overwrite status/journal files (C005): the
#: atomic tmp + fsync + os.replace helper.
DEFAULT_SANCTIONED_WRITERS = ("write_status_atomic",)


def _segments(pattern: str) -> tuple[str, ...]:
    return tuple(part for part in pattern.replace("\\", "/").split("/") if part)


def _matches(path_parts: tuple[str, ...], pattern: str) -> bool:
    """True if ``pattern``'s segments occur consecutively in the path."""
    pat = _segments(pattern)
    if not pat:
        return False
    span = len(pat)
    return any(
        path_parts[i : i + span] == pat
        for i in range(len(path_parts) - span + 1)
    )


@dataclass(frozen=True)
class Policy:
    """Which files are in scope, and which rules run per package."""

    include: tuple[str, ...] = DEFAULT_INCLUDE
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    #: pattern -> rule codes disabled under that pattern.
    package_disable: dict = field(
        default_factory=lambda: dict(DEFAULT_PACKAGE_DISABLE)
    )
    #: Where the concurrency pass (C001-C005) runs.
    concurrency_include: tuple[str, ...] = DEFAULT_CONCURRENCY_INCLUDE
    #: Function names allowed to overwrite status files (C005).
    sanctioned_writers: tuple[str, ...] = DEFAULT_SANCTIONED_WRITERS
    #: Explicit rule selection (e.g. from ``--select``); None = all.
    select: tuple[str, ...] | None = None

    def in_scope(self, path: str | Path, explicit: bool = False) -> bool:
        """Whether ``path`` gets the soundness (S-rule) pass.

        Files named explicitly on the command line are always checked
        (so fixtures and one-off files can be linted without editing the
        policy); excludes still apply to both.
        """
        parts = tuple(Path(path).as_posix().split("/"))
        if any(_matches(parts, pattern) for pattern in self.exclude):
            return False
        if explicit:
            return True
        return any(_matches(parts, pattern) for pattern in self.include)

    def in_concurrency_scope(self, path: str | Path,
                             explicit: bool = False) -> bool:
        """Whether ``path`` gets the concurrency (C-rule) pass."""
        parts = tuple(Path(path).as_posix().split("/"))
        if any(_matches(parts, pattern) for pattern in self.exclude):
            return False
        if explicit:
            return True
        return any(
            _matches(parts, pattern) for pattern in self.concurrency_include
        )

    def is_sanctioned(self, path: str | Path) -> bool:
        """Excluded modules are *sanctioned*: they implement the
        discipline (``rounding.py``), so a bound returned from one is
        not an S007 escape."""
        parts = tuple(Path(path).as_posix().split("/"))
        return any(_matches(parts, pattern) for pattern in self.exclude)

    def rules_for(self, path: str | Path, all_codes: tuple[str, ...]) -> tuple[str, ...]:
        """The rule codes active for one in-scope file."""
        parts = tuple(Path(path).as_posix().split("/"))
        active = list(all_codes)
        for pattern, disabled in self.package_disable.items():
            if _matches(parts, pattern):
                active = [code for code in active if code not in disabled]
        if self.select is not None:
            active = [code for code in active if code in self.select]
        return tuple(active)


def load_policy(pyproject: str | Path | None = None) -> Policy:
    """Build the policy, merging ``[tool.repro.soundness]`` over defaults.

    ``pyproject`` defaults to ``pyproject.toml`` in the current
    directory; a missing file (or missing table) just yields the
    defaults, a malformed file raises :class:`CheckError`.
    """
    path = Path(pyproject) if pyproject is not None else Path("pyproject.toml")
    if not path.exists():
        return Policy()
    if sys.version_info >= (3, 11):
        import tomllib
    else:  # pragma: no cover - py3.10 fallback
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return Policy()
    try:
        config = tomllib.loads(path.read_text())
    except (OSError, tomllib.TOMLDecodeError) as error:
        raise CheckError(f"could not read {path}: {error}") from error
    table = config.get("tool", {}).get("repro", {}).get("soundness", {})
    if not isinstance(table, dict):
        raise CheckError(f"[tool.repro.soundness] in {path} must be a table")
    include = tuple(table.get("include", DEFAULT_INCLUDE))
    exclude = tuple(table.get("exclude", DEFAULT_EXCLUDE))
    concurrency_include = tuple(
        table.get("concurrency-include", DEFAULT_CONCURRENCY_INCLUDE)
    )
    sanctioned_writers = tuple(
        table.get("sanctioned-writers", DEFAULT_SANCTIONED_WRITERS)
    )
    rules_table = table.get("package-rules")
    if rules_table is None:
        # No table at all: keep the built-in wrapper exemption. An
        # explicit (even empty) table replaces it, like include/exclude.
        package_disable = dict(DEFAULT_PACKAGE_DISABLE)
    else:
        package_disable = {}
        for pattern, entry in rules_table.items():
            disabled = entry.get("disable", []) if isinstance(entry, dict) else []
            package_disable[pattern] = tuple(
                str(code).upper() for code in disabled
            )
    return Policy(
        include=include,
        exclude=exclude,
        package_disable=package_disable,
        concurrency_include=concurrency_include,
        sanctioned_writers=sanctioned_writers,
    )
