"""Deterministic fault injection for the campaign execution layer.

The supervised runner (:mod:`repro.core.supervisor`) promises that a
worker crash, a hung cell, a torn journal write or a corrupted metrics
payload degrades to an explicit quarantine verdict instead of taking
the campaign down. Those promises are only worth anything if the
recovery paths run under test, so this module provides *deterministic*
fault injection at the four seams:

* ``crash:<cell>[:<n>|*]`` — the worker calls ``os._exit`` when it is
  handed ``<cell>`` (first ``n`` attempts, default 1; ``*`` = every
  attempt). Exercises dead-worker detection, respawn and retry.
* ``hang:<cell>[:<seconds>]`` — the worker blocks ``SIGALRM`` and
  sleeps (default 3600 s), immune to the in-worker budget guard.
  Exercises the supervisor's external kill path.
* ``slow:<cell>[:<seconds>]`` — an interruptible sleep (default 1 s)
  inside the cell's budget guard, in pool workers and the serial
  driver alike. Exercises the in-process ``cell_timeout`` guard.
* ``stall:<cell>[:<seconds>]`` — the worker's *heartbeat thread* goes
  silent for ``<seconds>`` (default 3600 s) starting when ``<cell>``
  is handed to it, while the computation itself proceeds normally.
  Exercises live-telemetry stall detection (``repro watch``), which
  must distinguish "alive but mute" from "making progress".
* ``torn-journal[:<nth>]`` — the ``nth`` checkpoint-journal append
  (1-based, default 1) is truncated mid-line with no newline, like a
  power loss mid-write. Exercises the tolerant journal loader.
* ``corrupt-metrics[:<cell>]`` — the metrics delta shipped back for
  ``<cell>`` (default: every cell) is replaced with garbage.
  Exercises the parent's merge guard.

Distributed campaigns (:mod:`repro.core.coordinator` /
:mod:`repro.core.node`) add node-level kinds, targeted by *shard id*
(``shard-<k>``, stable across runs — see
:func:`repro.core.lease.assign_shards`):

* ``node-crash:<shard>[:<n>|*]`` — the node agent calls ``os._exit``
  halfway through computing ``<shard>`` (first ``n`` lease epochs,
  default 1; ``*`` = every epoch). Exercises lease expiry on
  disconnect and cell-granularity work stealing.
* ``node-netsplit:<shard>[:<seconds>]`` — the node agent keeps
  computing ``<shard>`` but stops sending frames for ``<seconds>``
  (default 3600 s), then flushes what it buffered. Exercises
  heartbeat-timeout lease expiry and epoch fencing of the returning
  zombie. First lease epoch only, so the stealing node is unaffected.
* ``node-slowjoin:<seconds>`` — the node agent sleeps before
  connecting (default 1 s). Exercises a campaign that starts with
  fewer nodes than expected and picks up stragglers.

Faults come from :func:`install_faults` (tests) or the ``REPRO_FAULTS``
environment variable (live runs; fork workers inherit both). With no
faults installed every hook is a ``None`` check — campaigns in
production pay nothing.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

#: Environment variable holding a fault spec string.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code used for injected worker crashes (distinctive in logs).
CRASH_EXIT_CODE = 43

#: Fault kinds that target a specific cell attempt inside a worker.
_WORKER_KINDS = ("crash", "hang", "slow", "stall")
#: Fault kinds that target a node agent's handling of a shard lease.
_NODE_KINDS = ("node-crash", "node-netsplit", "node-slowjoin")
_ALL_KINDS = _WORKER_KINDS + ("torn-journal", "corrupt-metrics") + _NODE_KINDS


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec string that cannot be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive."""

    kind: str
    #: Target cell id for crash/hang/slow/corrupt-metrics, or target
    #: shard id for the node-* kinds (None = any).
    cell_id: str | None = None
    #: crash/node-crash: number of leading attempts (lease epochs, for
    #: node-crash) to fire on (-1 = every attempt).
    attempts: int = 1
    #: hang/slow/node-netsplit/node-slowjoin: duration in seconds.
    seconds: float = 3600.0
    #: torn-journal: which journal append to tear (1-based).
    nth: int = 1


def parse_faults(spec: str) -> list[FaultSpec]:
    """Parse a comma-separated fault spec string (see module docs)."""
    faults: list[FaultSpec] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        kind = parts[0]
        if kind not in _ALL_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {token!r} "
                f"(expected one of {', '.join(_ALL_KINDS)})"
            )
        try:
            if kind == "crash":
                if len(parts) < 2 or len(parts) > 3:
                    raise FaultSpecError(f"{token!r}: expected crash:<cell>[:<n>|*]")
                attempts = 1
                if len(parts) == 3:
                    attempts = -1 if parts[2] == "*" else int(parts[2])
                faults.append(FaultSpec("crash", cell_id=parts[1], attempts=attempts))
            elif kind in ("hang", "slow", "stall"):
                if len(parts) < 2 or len(parts) > 3:
                    raise FaultSpecError(f"{token!r}: expected {kind}:<cell>[:<seconds>]")
                seconds = float(parts[2]) if len(parts) == 3 else (
                    1.0 if kind == "slow" else 3600.0
                )
                faults.append(FaultSpec(kind, cell_id=parts[1], seconds=seconds))
            elif kind == "node-crash":
                if len(parts) < 2 or len(parts) > 3:
                    raise FaultSpecError(
                        f"{token!r}: expected node-crash:<shard>[:<n>|*]"
                    )
                attempts = 1
                if len(parts) == 3:
                    attempts = -1 if parts[2] == "*" else int(parts[2])
                faults.append(
                    FaultSpec("node-crash", cell_id=parts[1], attempts=attempts)
                )
            elif kind == "node-netsplit":
                if len(parts) < 2 or len(parts) > 3:
                    raise FaultSpecError(
                        f"{token!r}: expected node-netsplit:<shard>[:<seconds>]"
                    )
                seconds = float(parts[2]) if len(parts) == 3 else 3600.0
                faults.append(
                    FaultSpec("node-netsplit", cell_id=parts[1], seconds=seconds)
                )
            elif kind == "node-slowjoin":
                if len(parts) > 2:
                    raise FaultSpecError(
                        f"{token!r}: expected node-slowjoin[:<seconds>]"
                    )
                seconds = float(parts[1]) if len(parts) == 2 else 1.0
                faults.append(FaultSpec("node-slowjoin", seconds=seconds))
            elif kind == "torn-journal":
                if len(parts) > 2:
                    raise FaultSpecError(f"{token!r}: expected torn-journal[:<nth>]")
                faults.append(FaultSpec("torn-journal", nth=int(parts[1]) if len(parts) == 2 else 1))
            else:  # corrupt-metrics
                if len(parts) > 2:
                    raise FaultSpecError(f"{token!r}: expected corrupt-metrics[:<cell>]")
                faults.append(
                    FaultSpec("corrupt-metrics", cell_id=parts[1] if len(parts) == 2 else None)
                )
        except ValueError as exc:
            if isinstance(exc, FaultSpecError):
                raise
            raise FaultSpecError(f"bad fault token {token!r}: {exc}") from exc
    return faults


class FaultInjector:
    """Holds parsed fault specs and answers the hook-point queries.

    Worker-side decisions (crash/hang/slow/corrupt-metrics) are pure
    functions of ``(cell_id, attempt)`` so they stay deterministic
    across process boundaries: a respawned worker reaches the same
    verdict about the same attempt. Parent-side state (the journal
    append counter) lives on the instance.
    """

    def __init__(self, specs: Sequence[FaultSpec]):
        self.specs = list(specs)
        self._journal_appends = 0
        #: Monotonic deadline until which heartbeats are suppressed
        #: (``stall`` fault). Per-process state: each fork worker's
        #: injector arms its own window when it reaches the target cell.
        self._stall_until = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.specs!r})"

    # -- worker-side ---------------------------------------------------
    def _match(self, kind: str, cell_id: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.kind == kind and (spec.cell_id is None or spec.cell_id == cell_id):
                return spec
        return None

    def on_worker_cell(self, cell_id: str, attempt: int) -> None:
        """Called by a pool worker just before verifying a cell; may
        never return (crash) or may sleep (hang)."""
        crash = self._match("crash", cell_id)
        if crash is not None and (crash.attempts < 0 or attempt < crash.attempts):
            os._exit(CRASH_EXIT_CODE)
        hang = self._match("hang", cell_id)
        if hang is not None and attempt == 0:
            # Pretend to be stuck in native code: the in-worker SIGALRM
            # budget guard cannot fire, so the supervisor must kill us.
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
            deadline = time.monotonic() + hang.seconds
            while time.monotonic() < deadline:
                time.sleep(min(1.0, max(0.0, deadline - time.monotonic())))

    def on_guarded_cell(self, cell_id: str, attempt: int) -> None:
        """Called inside the cell's budget guard (worker *and* serial
        paths): a ``slow`` fault sleeps interruptibly here, so the
        in-process ``cell_timeout`` guard is what cuts it off."""
        stall = self._match("stall", cell_id)
        if stall is not None and attempt == 0:
            # Arm the heartbeat blackout *before* any slow sleep, so
            # `stall + slow` composes into "computing but mute". The
            # computation itself is NOT slowed by `stall` — only the
            # reporter thread goes quiet (it polls heartbeats_stalled()
            # before each beat).
            self._stall_until = time.monotonic() + stall.seconds
        slow = self._match("slow", cell_id)
        if slow is not None and attempt == 0:
            time.sleep(slow.seconds)

    def heartbeats_stalled(self) -> bool:
        """True while a ``stall`` fault's blackout window is open —
        polled by the live-telemetry heartbeat thread before each beat."""
        return time.monotonic() < self._stall_until

    def corrupt_metrics_payload(self, cell_id: str, attempt: int, delta):
        """Replace the metrics delta shipped to the parent with garbage
        when a ``corrupt-metrics`` fault targets this cell."""
        spec = self._match("corrupt-metrics", cell_id)
        if spec is not None and attempt == 0:
            return {"counters": ["not", "a", "mapping"], "corrupted-by": "fault-injection"}
        return delta

    # -- node-agent side -----------------------------------------------
    def node_crash_active(self, shard_id: str, epoch: int) -> bool:
        """True when a ``node-crash`` fault targets this shard grant
        (``epoch`` is 1-based, mirroring the lease epoch): the agent
        must ``os._exit`` partway through the shard."""
        spec = self._match("node-crash", shard_id)
        return spec is not None and (spec.attempts < 0 or epoch <= spec.attempts)

    def node_netsplit_seconds(self, shard_id: str, epoch: int) -> float | None:
        """Blackout duration when a ``node-netsplit`` fault targets this
        shard grant, else None. First epoch only: the shard's *next*
        holder (the work stealer) must not inherit the split."""
        spec = self._match("node-netsplit", shard_id)
        if spec is not None and epoch == 1:
            return spec.seconds
        return None

    def node_slowjoin_seconds(self) -> float:
        """Seconds a node agent should sleep before connecting
        (0.0 = no ``node-slowjoin`` fault installed)."""
        for spec in self.specs:
            if spec.kind == "node-slowjoin":
                return spec.seconds
        return 0.0

    # -- parent-side ---------------------------------------------------
    def tear_journal_line(self, line: str) -> tuple[str, bool]:
        """Maybe tear a checkpoint-journal line. Returns ``(text,
        torn)``; when torn, the caller must write ``text`` *without* a
        trailing newline (mimicking a write cut off mid-line)."""
        specs = [s for s in self.specs if s.kind == "torn-journal"]
        if not specs:
            return line, False
        self._journal_appends += 1
        if any(s.nth == self._journal_appends for s in specs):
            return line[: max(1, len(line) // 2)], True
        return line, False


# ----------------------------------------------------------------------
# Installation: explicit (tests) or via $REPRO_FAULTS (live runs)
# ----------------------------------------------------------------------
_INSTALLED: FaultInjector | None = None
#: Cache for the env-derived injector: (spec string, injector). Keyed by
#: the raw env value so parent-side state (the journal append counter)
#: survives repeated lookups within one run, while a *changed* env (a
#: test's monkeypatch) builds a fresh injector.
_ENV_CACHE: tuple[str, FaultInjector] | None = None


def install_faults(faults: FaultInjector | Sequence[FaultSpec] | str | None) -> FaultInjector | None:
    """Install a fault injector process-wide; returns the previous one.

    Accepts an injector, a spec list, a spec string, or ``None`` to
    uninstall. Fork-pool workers inherit whatever is installed at fork
    time.
    """
    global _INSTALLED
    previous = _INSTALLED
    if faults is None or isinstance(faults, FaultInjector):
        _INSTALLED = faults
    elif isinstance(faults, str):
        _INSTALLED = FaultInjector(parse_faults(faults))
    else:
        _INSTALLED = FaultInjector(faults)
    return previous


def get_fault_injector() -> FaultInjector | None:
    """The installed injector, else one parsed from ``$REPRO_FAULTS``,
    else ``None`` (the common case — every hook site checks for None
    first, so production campaigns pay a dict lookup)."""
    global _ENV_CACHE
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        _ENV_CACHE = None
        return None
    if _ENV_CACHE is not None and _ENV_CACHE[0] == spec:
        return _ENV_CACHE[1]
    injector = FaultInjector(parse_faults(spec))
    _ENV_CACHE = (spec, injector)
    return injector


@contextmanager
def injected_faults(faults: FaultInjector | Sequence[FaultSpec] | str) -> Iterator[FaultInjector]:
    """Scoped :func:`install_faults` (restores the previous injector)."""
    previous = install_faults(faults)
    try:
        injector = get_fault_injector()
        assert injector is not None
        yield injector
    finally:
        install_faults(previous)
