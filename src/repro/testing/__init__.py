"""Test-support machinery that ships with the package.

Unlike ``tests/``, this package is importable from production code:
the fault-injection harness (:mod:`repro.testing.faults`) hooks into
the supervised runner and the checkpoint journal so that recovery
paths can be exercised deterministically — from tier-1 tests and, via
the ``REPRO_FAULTS`` environment variable, from live campaigns.
"""

from .faults import (
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    get_fault_injector,
    injected_faults,
    install_faults,
    parse_faults,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "FaultSpecError",
    "get_fault_injector",
    "injected_faults",
    "install_faults",
    "parse_faults",
]
