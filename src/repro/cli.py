"""Command-line interface: ``python -m repro`` / ``repro-nncs``.

Subcommands:

* ``train``    — build (or load) the synthetic tables and network bank;
* ``verify``   — run a partition verification experiment (Fig. 9 data);
* ``show``     — render a saved report as the paper's figures;
* ``falsify``  — hunt for concrete counterexamples in unproved cells;
* ``simulate`` — run and print one concrete encounter;
* ``fig7``     — the substep-tightness ablation;
* ``stats``    — summarize a JSONL trace (per-phase timings, slow cells),
  or one live snapshot with ``--live``;
* ``watch``    — follow a running campaign live (per-worker table,
  verdict bar, stall detection);
* ``report``   — render ledger runs into a self-contained HTML dashboard;
* ``compare``  — diff two ledger runs / a committed baseline (perf gate).

``verify``, ``falsify`` and ``evaluate`` accept ``--trace-out`` /
``--metrics-out`` / ``--log-level``, which install a live
:class:`repro.obs.Recorder` for the duration of the run. Each of them
also appends a :class:`repro.obs.RunRecord` to the run ledger
(``.repro/runs/`` by default; ``--ledger-dir`` overrides, ``--no-ledger``
disables), which is what ``report`` and ``compare`` read.
"""

from __future__ import annotations

import argparse
import logging
import math
import os
import sys

import numpy as np


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        help="write a JSONL span/event trace here (see `repro stats`)",
    )
    parser.add_argument(
        "--metrics-out",
        help="write the final metrics snapshot (counters/histograms) as JSON here",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="logging level for the repro.* loggers (default: warning)",
    )
    parser.add_argument(
        "--ledger-dir",
        help="run-ledger directory (default: $REPRO_LEDGER or .repro/runs)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the ledger",
    )


def _setup_observability(args: argparse.Namespace):
    """Install a live recorder per the obs flags; returns it (or the
    ambient no-op recorder when no flag was passed)."""
    from .obs import Recorder, get_recorder, set_recorder

    if getattr(args, "log_level", None):
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(asctime)s %(levelname)s %(name)s %(message)s",
            stream=sys.stderr,
        )
        logging.getLogger("repro").setLevel(getattr(logging, args.log_level.upper()))
    if getattr(args, "trace_out", None) or getattr(args, "metrics_out", None):
        recorder = Recorder(trace_path=args.trace_out)
        set_recorder(recorder)
        return recorder
    return get_recorder()


def _teardown_observability(args: argparse.Namespace, recorder) -> None:
    from .obs import set_recorder

    if not recorder.enabled:
        return
    if getattr(args, "metrics_out", None):
        recorder.metrics.to_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    recorder.close()
    set_recorder(None)
    if getattr(args, "trace_out", None):
        print(f"trace written to {args.trace_out}", file=sys.stderr)


def _append_ledger(args: argparse.Namespace, record) -> None:
    """Append ``record`` to the run ledger (best-effort: a full disk or
    read-only checkout must never fail the run itself)."""
    if getattr(args, "no_ledger", False):
        return
    from .obs import record_run

    try:
        path = record_run(record, root=getattr(args, "ledger_dir", None))
    except OSError as error:
        print(f"warning: could not append run ledger record: {error}", file=sys.stderr)
        return
    print(f"ledger record: {path}", file=sys.stderr)


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=["tiny", "paper"],
        default="tiny",
        help="network/table fidelity (tiny trains in seconds, paper in minutes)",
    )


def _scenario(name: str):
    from .acasxu import PAPER_SCENARIO, TINY_SCENARIO

    return PAPER_SCENARIO if name == "paper" else TINY_SCENARIO


def cmd_train(args: argparse.Namespace) -> int:
    from .acasxu import load_or_train_networks, normalize_inputs

    scenario = _scenario(args.scenario)
    networks, tables = load_or_train_networks(
        scenario.table_config, scenario.network_config
    )
    rng = np.random.default_rng(0)
    agree = 0
    trials = 1000
    for _ in range(trials):
        rho = rng.uniform(500, 10000)
        theta = rng.uniform(-math.pi, math.pi)
        psi = rng.uniform(-3.5, 3.5)
        prev = int(rng.integers(5))
        x = normalize_inputs(np.array([rho, theta, psi, 700.0, 600.0]))
        net = int(np.argmin(networks[prev].forward(x)))
        table = int(np.argmin(tables.scores(prev, rho, theta, psi)))
        agree += net == table
    print(f"networks ready ({args.scenario}); argmin agreement with tables: "
          f"{100.0 * agree / trials:.1f}%")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    import contextlib
    import time

    from .core import ReachSettings, RefinementPolicy, RunnerSettings
    from .experiments import ExperimentConfig, render_report, run_experiment
    from .obs import (
        CampaignProgress,
        LiveTelemetry,
        Recorder,
        TelemetrySettings,
        new_run_id,
        set_recorder,
    )

    recorder = _setup_observability(args)
    if not recorder.enabled:
        # Metrics are always on for `verify`: the end-of-run summary
        # (verdicts, p95 cell time) is sourced from them. Without
        # --trace-out no trace file is written.
        recorder = Recorder()
        set_recorder(recorder)

    batch_mode = getattr(args, "batch", "auto")
    lockstep_ok = (
        args.workers == 1
        and args.cell_timeout is None
        and args.deadline is None
    )
    batch_cells = batch_mode == "cells" or (batch_mode == "auto" and lockstep_ok)
    batch_states = batch_mode == "states" or (
        batch_mode == "auto" and not lockstep_ok
    )

    # Settings validation lives in RunnerSettings.__post_init__ — one
    # authority for the CLI and programmatic callers alike. The CLI's
    # job is only to translate the failure into flag language.
    try:
        runner = RunnerSettings(
            reach=ReachSettings(
                substeps=args.substeps,
                max_symbolic_states=args.gamma,
                batch_states=batch_states,
            ),
            refinement=RefinementPolicy(dims=(0, 1, 2), max_depth=args.depth),
            workers=args.workers,
            cell_timeout=args.cell_timeout,
            deadline=args.deadline,
            max_retries=args.max_retries,
            batch_cells=batch_cells,
        )
    except ValueError as error:
        print(
            f"error: {error} (check --workers, --cell-timeout, --deadline, "
            "--max-retries, --batch)",
            file=sys.stderr,
        )
        return 2

    config = ExperimentConfig(
        name="cli",
        scenario=_scenario(args.scenario),
        num_arcs=args.arcs,
        num_headings=args.headings,
        runner=runner,
    )

    # Mint the run id before the campaign so the live-status directory
    # (.repro/live/<run-id>/) and the ledger record share one name.
    run_id = new_run_id("verify")
    live: LiveTelemetry | None = None
    if not args.no_live:
        try:
            live = LiveTelemetry(
                run_id,
                TelemetrySettings(
                    interval=args.live_interval,
                    root=args.live_dir,
                    metrics_port=args.metrics_port,
                ),
                recorder=recorder,
            )
        except OSError as error:
            # A read-only checkout must not stop a verification run.
            print(f"warning: live telemetry disabled: {error}", file=sys.stderr)
            live = None

    progress = CampaignProgress(stream=sys.stderr)
    if live is not None:
        progress.stalled_provider = live.snapshot.stalled_count
        print(f"live status: {live.status_path} (`repro watch {run_id}`)",
              file=sys.stderr)
        if live.server is not None:
            print(f"metrics endpoint: {live.server.url} "
                  "(/status.json, /metrics)", file=sys.stderr)
    started = time.perf_counter()
    with contextlib.ExitStack() as stack:
        if live is not None:
            stack.enter_context(live)
        if args.distributed is not None:
            report = _run_distributed_experiment(config, args, run_id, progress)
        else:
            report = run_experiment(config, progress=progress)
    wall = time.perf_counter() - started
    print(render_report(report))

    cell_hist = recorder.metrics.histograms.get("cell.seconds")
    print("\nrun summary:")
    verdict_line = (
        f"  cells: {progress.proved} proved, {progress.unproved} unproved, "
        f"{progress.witnessed} witnessed"
    )
    if progress.aborted:
        verdict_line += f", {progress.aborted} aborted"
    if progress.timed_out:
        verdict_line += f", {progress.timed_out} timed-out"
    print(f"{verdict_line} (of {report.total_cells})")
    interrupted = report.settings_summary.get("interrupted")
    if interrupted:
        print(f"  INTERRUPTED ({interrupted}): partial report — "
              "finished cells only")
    print(f"  wall time: {wall:.2f}s ({args.workers} workers)")
    if cell_hist is not None and cell_hist.count:
        print(
            f"  cell time: p50 {cell_hist.p50:.3f}s, p95 {cell_hist.p95:.3f}s, "
            f"max {cell_hist.max_value:.3f}s over {cell_hist.count} reach runs"
        )
    if args.out:
        report.to_json(args.out)
        print(f"\nreport written to {args.out}")

    from .obs import record_from_report

    extra = {
        key: value
        for key, value in (
            ("trace", args.trace_out),
            ("metrics", args.metrics_out),
            ("report", args.out),
        )
        if value
    }
    if live is not None:
        extra["live_status"] = str(live.status_path)
    record = record_from_report(
        report,
        kind="verify",
        run_id=run_id,
        config={
            "scenario": args.scenario,
            "arcs": args.arcs,
            "headings": args.headings,
            "depth": args.depth,
            "substeps": args.substeps,
            "gamma": args.gamma,
            "workers": args.workers,
            "cell_timeout": args.cell_timeout,
            "deadline": args.deadline,
            "max_retries": args.max_retries,
        },
        wall_seconds=wall,
        extra=extra,
    )
    _append_ledger(args, record)
    _teardown_observability(args, recorder)
    return 0


def _resolve_node_count(spec: str, workers_per_node: int) -> int:
    """``--distributed auto`` → enough nodes to use the machine without
    oversubscribing: one coordinator plus nodes of `workers_per_node`."""
    if spec != "auto":
        count = int(spec)
        if count < 1:
            raise ValueError("--distributed needs at least one node")
        return count
    cores = os.cpu_count() or 2
    return max(2, min(8, (cores - 1) // max(1, workers_per_node)))


def _distributed_journal(args: argparse.Namespace, run_id: str) -> str:
    if getattr(args, "journal", None):
        return args.journal
    return os.path.join(".repro", "distributed", f"{run_id}.jsonl")


def _run_distributed_experiment(config, args, run_id: str, progress):
    """The `verify --distributed` body: same partition, same report
    decoration as :func:`repro.experiments.run_experiment`, but run by
    a loopback coordinator with forked node agents."""
    from .acasxu import build_system, initial_cells
    from .core import DistributedSettings, run_distributed

    nodes = _resolve_node_count(args.distributed, args.workers)
    cells = initial_cells(config.num_arcs, config.num_headings)
    scenario = config.scenario
    report = run_distributed(
        lambda: build_system(scenario),
        cells,
        _distributed_journal(args, run_id),
        settings=config.runner,
        dist=DistributedSettings(
            num_shards=args.num_shards,
            lease_timeout=args.lease_timeout,
        ),
        nodes=nodes,
        workers_per_node=args.workers,
        progress=progress,
    )
    report.system_name = f"acasxu/{config.name}"
    report.settings_summary["num_arcs"] = config.num_arcs
    report.settings_summary["num_headings"] = config.num_headings
    return report


def cmd_coordinate(args: argparse.Namespace) -> int:
    """Listen for node agents and drive one distributed campaign."""
    import contextlib
    import time

    from .acasxu import initial_cells
    from .core import (
        Coordinator,
        DistributedSettings,
        ReachSettings,
        RefinementPolicy,
        RunnerSettings,
    )
    from .experiments import render_report
    from .obs import (
        CampaignProgress,
        LiveTelemetry,
        Recorder,
        TelemetrySettings,
        new_run_id,
        record_from_report,
        set_recorder,
    )

    recorder = _setup_observability(args)
    if not recorder.enabled:
        recorder = Recorder()
        set_recorder(recorder)
    try:
        runner = RunnerSettings(
            reach=ReachSettings(
                substeps=args.substeps, max_symbolic_states=args.gamma
            ),
            refinement=RefinementPolicy(dims=(0, 1, 2), max_depth=args.depth),
            cell_timeout=args.cell_timeout,
            deadline=args.deadline,
            max_retries=args.max_retries,
        )
    except ValueError as error:
        print(
            f"error: {error} (check --cell-timeout, --deadline, --max-retries)",
            file=sys.stderr,
        )
        return 2

    run_id = new_run_id("coordinate")
    cells = initial_cells(args.arcs, args.headings)
    coordinator = Coordinator(
        cells,
        _distributed_journal(args, run_id),
        settings=runner,
        dist=DistributedSettings(
            listen=args.listen,
            num_shards=args.num_shards,
            expected_nodes=args.nodes,
            lease_timeout=args.lease_timeout,
        ),
        progress=CampaignProgress(stream=sys.stderr),
    )
    host, port = coordinator.start()
    print(f"coordinator listening on {host}:{port} "
          f"(connect node agents with `repro node --connect {host}:{port}`)",
          file=sys.stderr)

    live: LiveTelemetry | None = None
    if not args.no_live:
        try:
            live = LiveTelemetry(
                run_id,
                TelemetrySettings(
                    interval=args.live_interval,
                    root=args.live_dir,
                    metrics_port=args.metrics_port,
                ),
                recorder=recorder,
            )
            print(f"live status: {live.status_path} (`repro watch {run_id}`)",
                  file=sys.stderr)
        except OSError as error:
            print(f"warning: live telemetry disabled: {error}", file=sys.stderr)

    started = time.perf_counter()
    with contextlib.ExitStack() as stack:
        if live is not None:
            stack.enter_context(live)
        report = coordinator.serve()
    print(render_report(report))
    stats = report.settings_summary["distributed"]
    print(f"\nnodes: {', '.join(stats['nodes_seen']) or 'none'}")
    print(f"grants: {stats['grants']}, expired leases: "
          f"{stats['expired_leases']}, stolen cells: {stats['stolen_cells']}, "
          f"fenced frames: {stats['fenced_frames']}")
    if args.out:
        report.to_json(args.out)
        print(f"\nreport written to {args.out}")
    record = record_from_report(
        report,
        kind="coordinate",
        run_id=run_id,
        wall_seconds=time.perf_counter() - started,
        extra={"journal": str(coordinator.journal_path)},
    )
    _append_ledger(args, record)
    _teardown_observability(args, recorder)
    return 0


def cmd_node(args: argparse.Namespace) -> int:
    """Join a distributed campaign as one node agent."""
    from .core import run_node
    from .core.node import NodeSettings
    from .core.wire import FrameError

    scenario = _scenario(args.scenario)

    def factory_from_config(config: dict):
        # The system is rebuilt from the *local* scenario tables; the
        # coordinator's welcome config supplies the pool settings.
        from .acasxu import build_system

        return lambda: build_system(scenario)

    try:
        outcome = run_node(
            NodeSettings(
                connect=args.connect,
                node_id=args.node_id,
                workers=args.workers,
                heartbeat_interval=args.heartbeat_interval,
            ),
            factory_from_config=factory_from_config,
        )
    except (OSError, EOFError, FrameError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{outcome.node_id}: {outcome.cells_computed} cells over "
          f"{outcome.shards_completed} shards"
          + (f", fenced {outcome.fenced}x" if outcome.fenced else ""))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    from .core import VerificationReport
    from .experiments import render_report, write_fig9a_svg

    report = VerificationReport.from_json(args.report)
    print(render_report(report))
    if args.svg:
        write_fig9a_svg(report, args.svg)
        print(f"\npolar safety map written to {args.svg}")
    return 0


def cmd_falsify(args: argparse.Namespace) -> int:
    import time

    from .acasxu import SENSOR_RANGE_FT, build_system
    from .baselines import cross_entropy_falsification, min_distance_robustness
    from .intervals import Box

    recorder = _setup_observability(args)
    started = time.perf_counter()
    system = build_system(_scenario(args.scenario))

    def decode(params):
        phi, delta = params
        psi = (phi + math.pi + delta + math.pi) % (2 * math.pi) - math.pi
        state = np.array(
            [
                -SENSOR_RANGE_FT * math.sin(phi),
                SENSOR_RANGE_FT * math.cos(phi),
                psi,
                700.0,
                600.0,
            ]
        )
        return state, 0

    result = cross_entropy_falsification(
        system,
        Box([-math.pi, -math.pi / 2], [math.pi, math.pi / 2]),
        decode,
        robustness=min_distance_robustness((0, 1), 500.0),
        population=args.population,
        generations=args.generations,
        seed=args.seed,
    )
    print(f"trajectories run: {result.trajectories_run}")
    print(f"best robustness (min distance - 500 ft): {result.best_robustness:.1f}")
    if result.falsified:
        phi, delta = result.witness_params
        print(
            f"COUNTEREXAMPLE: intruder entering at bearing {math.degrees(phi):.1f}° "
            f"with heading offset {math.degrees(delta):.1f}° collides at "
            f"t = {result.witness.error_time:.1f}s"
        )
    else:
        print("no counterexample found")

    from .obs import RunRecord, git_revision, new_run_id, phases_from_metrics

    snapshot = recorder.metrics.snapshot() if recorder.enabled else {}
    record = RunRecord(
        run_id=new_run_id("falsify"),
        kind="falsify",
        started_at=time.time(),
        wall_seconds=time.perf_counter() - started,
        git_sha=git_revision(),
        config={
            "scenario": args.scenario,
            "population": args.population,
            "generations": args.generations,
            "seed": args.seed,
        },
        verdicts={"witnessed": int(result.falsified)},
        phases=phases_from_metrics(snapshot),
        counters=dict(snapshot.get("counters") or {}),
        extra={
            "trajectories_run": result.trajectories_run,
            "best_robustness": result.best_robustness,
            "falsified": result.falsified,
        },
    )
    _append_ledger(args, record)
    _teardown_observability(args, recorder)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .acasxu import ADVISORIES, SENSOR_RANGE_FT, build_system
    from .baselines import simulate

    system = build_system(_scenario(args.scenario))
    phi = math.radians(args.bearing)
    delta = math.radians(args.heading_offset)
    psi = (phi + math.pi + delta + math.pi) % (2 * math.pi) - math.pi
    state = np.array(
        [
            -SENSOR_RANGE_FT * math.sin(phi),
            SENSOR_RANGE_FT * math.cos(phi),
            psi,
            700.0,
            600.0,
        ]
    )
    trajectory = simulate(system, state, 0)
    print("  t    x        y        rho      advisory")
    for j, command in enumerate(trajectory.commands):
        idx = j * 10
        s = trajectory.states[idx]
        rho = math.hypot(s[0], s[1])
        print(
            f"  {trajectory.times[idx]:4.1f} {s[0]:8.0f} {s[1]:8.0f} "
            f"{rho:8.0f}  {ADVISORIES[command]}"
        )
    distances = np.hypot(trajectory.states[:, 0], trajectory.states[:, 1])
    print(f"minimum separation: {float(distances.min()):.0f} ft "
          f"({'COLLISION' if trajectory.reached_error else 'safe'})")
    return 0


def cmd_fig7(args: argparse.Namespace) -> int:
    from .acasxu import build_system
    from .experiments import fig7_substep_ablation, render_fig7

    system = build_system(_scenario(args.scenario))
    rows = fig7_substep_ablation(system)
    print(render_fig7(rows))
    return 0


def cmd_props(args: argparse.Namespace) -> int:
    from .acasxu import load_or_train_networks
    from .acasxu.properties import check_catalog, standard_properties

    scenario = _scenario(args.scenario)
    networks, _tables = load_or_train_networks(
        scenario.table_config, scenario.network_config
    )
    result = check_catalog(networks)
    for prop in standard_properties():
        outcome = result.results[prop.name]
        line = f"{prop.name}: {outcome.outcome.value}"
        if outcome.witness is not None and args.verbose:
            line += f"  witness(normalized)={np.round(outcome.witness, 4).tolist()}"
        print(line)
    print(
        f"\n{len(result.verified_names())} verified, "
        f"{len(result.falsified_names())} falsified "
        "(falsified phi-properties localize where the distilled "
        "networks deviate from the tables)"
    )
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    import time

    from .acasxu import build_system, evaluate_controller

    recorder = _setup_observability(args)
    started = time.perf_counter()
    system = build_system(_scenario(args.scenario))
    stats = evaluate_controller(
        system,
        encounters=args.encounters,
        seed=args.seed,
        threat_fraction=args.threat_fraction,
    )
    print(f"encounters: {stats.encounters} "
          f"({args.threat_fraction:.0%} collision-course biased)")
    print(f"NMACs unequipped: {stats.nmacs_without_system}")
    print(f"NMACs equipped:   {stats.nmacs_with_system}")
    ratio = stats.risk_ratio
    print(f"risk ratio: {'n/a' if ratio == float('inf') else f'{ratio:.3f}'}")
    print(f"alert rate: {stats.alert_rate:.1%}, "
          f"mean alert duration: {stats.mean_alert_steps:.1f} steps")
    print(f"mean minimum separation: {stats.mean_min_separation_ft:.0f} ft")

    from .obs import RunRecord, git_revision, new_run_id, phases_from_metrics

    snapshot = recorder.metrics.snapshot() if recorder.enabled else {}
    record = RunRecord(
        run_id=new_run_id("evaluate"),
        kind="evaluate",
        started_at=time.time(),
        wall_seconds=time.perf_counter() - started,
        git_sha=git_revision(),
        config={
            "scenario": args.scenario,
            "encounters": args.encounters,
            "seed": args.seed,
            "threat_fraction": args.threat_fraction,
        },
        phases=phases_from_metrics(snapshot),
        counters=dict(snapshot.get("counters") or {}),
        extra={
            "nmacs_without_system": stats.nmacs_without_system,
            "nmacs_with_system": stats.nmacs_with_system,
            "alert_rate": stats.alert_rate,
            "mean_min_separation_ft": stats.mean_min_separation_ft,
        },
    )
    _append_ledger(args, record)
    _teardown_observability(args, recorder)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .acasxu import load_or_train_networks
    from .acasxu.export import export_bank

    scenario = _scenario(args.scenario)
    networks, _tables = load_or_train_networks(
        scenario.table_config, scenario.network_config
    )
    paths = export_bank(networks, args.directory)
    for path in paths:
        print(path)
    print(f"\n{len(paths)} networks written in .nnet format")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import render_stats, summarize_trace_file

    if args.live:
        # One-shot snapshot of a (possibly still running) campaign,
        # rendered exactly like a `repro watch` frame but without the
        # TTY loop — pipe/cron friendly.
        from .obs import read_status, render_watch

        try:
            status = read_status(args.live, root=args.live_dir)
        except (FileNotFoundError, ValueError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(render_watch(status))
        return 0
    if not args.trace:
        print(
            "error: pass a trace file, or --live <run-id|path> for a "
            "live-campaign snapshot",
            file=sys.stderr,
        )
        return 1
    trace_path = Path(args.trace)
    if not trace_path.exists():
        print(f"error: no such trace: {trace_path}", file=sys.stderr)
        return 1
    try:
        summary = summarize_trace_file(trace_path, top_cells=args.top)
    except OSError as error:
        print(f"error: could not read trace {trace_path}: {error}", file=sys.stderr)
        return 1
    if summary.events == 0:
        detail = (
            f"all {summary.malformed_lines} lines malformed"
            if summary.malformed_lines
            else "no events"
        )
        print(f"error: empty trace: {trace_path} ({detail})", file=sys.stderr)
        return 1
    metrics_snapshot = None
    if args.metrics:
        try:
            with open(args.metrics) as handle:
                metrics_snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"error: could not read metrics snapshot {args.metrics}: {error}",
                file=sys.stderr,
            )
            return 1
    print(f"trace: {trace_path}")
    print(render_stats(summary, metrics_snapshot))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    import json
    import time

    from .obs import list_live_runs, read_status, render_watch

    ref = args.run
    if not ref:
        runs = list_live_runs(args.live_dir)
        if not runs:
            from .obs import live_root

            print(
                f"error: no live runs under {live_root(args.live_dir)} "
                "(start one with `repro verify`)",
                file=sys.stderr,
            )
            return 1
        # Prefer a campaign that is still going; else show the newest.
        running = [r for r in runs if r.get("state") in ("running", "starting")]
        ref = (running[0] if running else runs[0])["run_id"]

    def load() -> dict | None:
        try:
            return read_status(ref, root=args.live_dir)
        except (FileNotFoundError, ValueError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return None

    status = load()
    if status is None:
        return 1
    if args.once:
        print(render_watch(status))
        return 0
    try:
        while True:
            # Clear + home; re-rendering the whole frame keeps the view
            # consistent however the terminal got resized.
            sys.stdout.write("\x1b[2J\x1b[H" + render_watch(status) + "\n")
            sys.stdout.flush()
            if status.get("state") in ("finished", "interrupted"):
                return 0
            time.sleep(args.interval)
            status = load()
            if status is None:
                return 1
    except KeyboardInterrupt:
        print()
        return 0


def _load_ledger_records(args: argparse.Namespace, refs: list[str]):
    """Resolve run references (ids / paths / ``latest``) into records,
    oldest first. Prints a one-line error and returns None on failure."""
    import json

    from .obs import load_run, query_runs

    root = getattr(args, "ledger_dir", None)
    try:
        if refs:
            records = [load_run(ref, root=root) for ref in refs]
        else:
            entries = query_runs(root, limit=getattr(args, "last", 10))
            records = [load_run(e["run_id"], root=root) for e in entries]
    except (FileNotFoundError, ValueError, json.JSONDecodeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    if not records:
        from .obs import ledger_root

        print(
            f"error: no runs in ledger {ledger_root(root)} "
            "(run `repro verify` first, or pass record paths)",
            file=sys.stderr,
        )
        return None
    records.sort(key=lambda r: (r.started_at, r.run_id))
    return records


def cmd_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import read_trace, render_html_report

    records = _load_ledger_records(args, args.runs)
    if records is None:
        return 1
    primary = records[-1]

    trace_events = None
    trace_ref = args.trace or primary.extra.get("trace")
    if trace_ref:
        trace_path = Path(trace_ref)
        if trace_path.exists():
            trace_events = list(read_trace(trace_path))
        elif args.trace:
            print(f"error: no such trace: {trace_path}", file=sys.stderr)
            return 1
        else:
            print(
                f"note: trace {trace_path} from the ledger record is gone; "
                "skipping the flamegraph",
                file=sys.stderr,
            )

    figures = []
    report_ref = args.report_json or primary.extra.get("report")
    if report_ref and Path(report_ref).exists():
        from .core import VerificationReport
        from .experiments import render_fig9a_svg

        try:
            verification = VerificationReport.from_json(report_ref)
        except (json.JSONDecodeError, KeyError, ValueError) as error:
            print(
                f"error: could not read report JSON {report_ref}: {error}",
                file=sys.stderr,
            )
            return 1
        figures.append(
            (
                f"Fig. 9a safety map ({report_ref})",
                render_fig9a_svg(verification),
            )
        )
    elif args.report_json:
        print(f"error: no such report JSON: {args.report_json}", file=sys.stderr)
        return 1

    html = render_html_report(
        records,
        trace_events=trace_events,
        figures=figures,
        title=f"repro {primary.kind} report — {primary.run_id}",
    )
    out = Path(args.out)
    out.write_text(html)
    print(f"report written to {out} ({len(records)} runs, {len(html)} bytes)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import json

    from .obs import compare_records, load_run, render_comparison

    refs = list(args.runs)
    if args.baseline:
        baseline_ref = args.baseline
        candidate_ref = refs[0] if refs else "latest"
    elif len(refs) >= 2:
        baseline_ref, candidate_ref = refs[0], refs[1]
    elif len(refs) == 1:
        baseline_ref, candidate_ref = refs[0], "latest"
    else:
        print(
            "error: nothing to compare — pass BASELINE [CANDIDATE] or "
            "--baseline path/to/baseline.json",
            file=sys.stderr,
        )
        return 1

    try:
        baseline = load_run(baseline_ref, root=args.ledger_dir)
        candidate = load_run(candidate_ref, root=args.ledger_dir)
    except (FileNotFoundError, ValueError, json.JSONDecodeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    comparison = compare_records(
        baseline,
        candidate,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        coverage_tolerance=args.coverage_tolerance,
    )
    print(render_comparison(comparison))
    return 0 if comparison.ok else 2


def cmd_check(args: argparse.Namespace) -> int:
    from .analysis.cli import run_check

    return run_check(
        paths=args.paths,
        fmt=args.format,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        update_baseline=args.update_baseline,
        select=args.select,
        changed_only=args.changed_only,
        no_cache=args.no_cache,
        cache_path=args.cache,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-nncs",
        description="Safety verification of neural network controlled systems "
        "(reproduction of Claviere et al., DSN 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="build the tables and network bank")
    _add_scenario_argument(p_train)
    p_train.set_defaults(fn=cmd_train)

    p_verify = sub.add_parser("verify", help="run a partition verification")
    _add_scenario_argument(p_verify)
    p_verify.add_argument("--arcs", type=int, default=24)
    p_verify.add_argument("--headings", type=int, default=6)
    p_verify.add_argument("--depth", type=int, default=2, help="split-refinement depth")
    p_verify.add_argument("--substeps", type=int, default=10, help="the paper's M")
    p_verify.add_argument("--gamma", type=int, default=5, help="the paper's Gamma")
    p_verify.add_argument("--workers", type=int, default=1)
    p_verify.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget; overruns quarantine as timed-out",
    )
    p_verify.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="campaign wall-clock budget; stop dispatching once exceeded "
        "and return a partial report",
    )
    p_verify.add_argument(
        "--max-retries", type=int, default=1,
        help="retries for a cell whose worker crashed before it is "
        "quarantined as aborted",
    )
    p_verify.add_argument(
        "--batch", choices=["auto", "cells", "states", "off"], default="auto",
        help="SoA kernel batching: `cells` runs the whole partition in "
        "lockstep waves (requires --workers 1 and no wall-clock budgets), "
        "`states` batches within each cell, `off` forces the scalar path, "
        "`auto` picks `cells` when compatible and `states` otherwise. "
        "Verdicts are bitwise identical either way; REPRO_BATCHED=0 "
        "overrides everything to scalar",
    )
    p_verify.add_argument(
        "--distributed", nargs="?", const="auto", default=None, metavar="N",
        help="run the campaign as one loopback coordinator plus N forked "
        "node agents (bare flag = auto-size from CPU count); --workers "
        "then means workers per node. Results are deterministic: the "
        "merged journal and report match a single-host run",
    )
    p_verify.add_argument(
        "--journal", metavar="PATH",
        help="with --distributed: checkpoint journal path (default "
        ".repro/distributed/<run-id>.jsonl); an existing journal resumes",
    )
    p_verify.add_argument(
        "--num-shards", type=int, default=None, metavar="K",
        help="with --distributed: shard count (default: sized from the "
        "node count; more shards = finer work stealing)",
    )
    p_verify.add_argument(
        "--lease-timeout", type=float, default=10.0, metavar="SECONDS",
        help="with --distributed: node silence before its shard lease "
        "expires and the work is stolen",
    )
    p_verify.add_argument("--out", help="write the JSON report here")
    p_verify.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve the live snapshot over HTTP on 127.0.0.1:PORT "
        "(0 = ephemeral): /status.json is JSON, /metrics is Prometheus "
        "text format",
    )
    p_verify.add_argument(
        "--no-live", action="store_true",
        help="disable live telemetry (heartbeats and .repro/live status files)",
    )
    p_verify.add_argument(
        "--live-interval", type=float, default=1.0, metavar="SECONDS",
        help="worker heartbeat / status.json rewrite period",
    )
    p_verify.add_argument(
        "--live-dir",
        help="live-status directory (default: $REPRO_LIVE or .repro/live)",
    )
    _add_obs_arguments(p_verify)
    p_verify.set_defaults(fn=cmd_verify)

    p_coord = sub.add_parser(
        "coordinate",
        help="host a distributed campaign: shard the partition, lease "
        "shards to connecting node agents, steal work from lost nodes",
    )
    _add_scenario_argument(p_coord)
    p_coord.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (port 0 = ephemeral, printed on startup)",
    )
    p_coord.add_argument(
        "--nodes", type=int, default=0, metavar="N",
        help="hold all grants until N node agents have connected "
        "(default 0 = grant as nodes arrive)",
    )
    p_coord.add_argument("--arcs", type=int, default=24)
    p_coord.add_argument("--headings", type=int, default=6)
    p_coord.add_argument("--depth", type=int, default=2,
                         help="split-refinement depth")
    p_coord.add_argument("--substeps", type=int, default=10,
                         help="the paper's M")
    p_coord.add_argument("--gamma", type=int, default=5,
                         help="the paper's Gamma")
    p_coord.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget, enforced on each node",
    )
    p_coord.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="campaign wall-clock budget; stop granting once exceeded",
    )
    p_coord.add_argument("--max-retries", type=int, default=1)
    p_coord.add_argument(
        "--journal", metavar="PATH",
        help="checkpoint journal path (default "
        ".repro/distributed/<run-id>.jsonl); an existing journal resumes "
        "and restores lease epochs",
    )
    p_coord.add_argument(
        "--num-shards", type=int, default=None, metavar="K",
        help="shard count (default: sized from --nodes)",
    )
    p_coord.add_argument(
        "--lease-timeout", type=float, default=10.0, metavar="SECONDS",
        help="node silence before its shard lease expires",
    )
    p_coord.add_argument("--out", help="write the JSON report here")
    p_coord.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /status.json and /metrics on 127.0.0.1:PORT",
    )
    p_coord.add_argument(
        "--no-live", action="store_true",
        help="disable live telemetry (.repro/live status files)",
    )
    p_coord.add_argument(
        "--live-interval", type=float, default=1.0, metavar="SECONDS",
        help="status.json rewrite period",
    )
    p_coord.add_argument(
        "--live-dir",
        help="live-status directory (default: $REPRO_LIVE or .repro/live)",
    )
    _add_obs_arguments(p_coord)
    p_coord.set_defaults(fn=cmd_coordinate)

    p_node = sub.add_parser(
        "node",
        help="join a distributed campaign as a node agent (verifies "
        "leased shards on a local worker pool)",
    )
    _add_scenario_argument(p_node)
    p_node.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (printed by `repro coordinate`)",
    )
    p_node.add_argument("--workers", type=int, default=1,
                        help="local worker-pool size")
    p_node.add_argument(
        "--node-id", default=None,
        help="stable node name shown in `repro watch` (default node-<pid>)",
    )
    p_node.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="SECONDS",
        help="heartbeat period (keep well under the coordinator's "
        "--lease-timeout)",
    )
    p_node.set_defaults(fn=cmd_node)

    p_show = sub.add_parser("show", help="render a saved JSON report")
    p_show.add_argument("report")
    p_show.add_argument("--svg", help="also write the polar map as SVG here")
    p_show.set_defaults(fn=cmd_show)

    p_falsify = sub.add_parser("falsify", help="search for counterexamples")
    _add_scenario_argument(p_falsify)
    p_falsify.add_argument("--population", type=int, default=40)
    p_falsify.add_argument("--generations", type=int, default=10)
    p_falsify.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(p_falsify)
    p_falsify.set_defaults(fn=cmd_falsify)

    p_sim = sub.add_parser("simulate", help="run one concrete encounter")
    _add_scenario_argument(p_sim)
    p_sim.add_argument("--bearing", type=float, default=0.0,
                       help="intruder entry bearing in degrees (0 = ahead)")
    p_sim.add_argument("--heading-offset", type=float, default=0.0,
                       help="offset from directly-inward heading, degrees")
    p_sim.set_defaults(fn=cmd_simulate)

    p_fig7 = sub.add_parser("fig7", help="substep-tightness ablation")
    _add_scenario_argument(p_fig7)
    p_fig7.set_defaults(fn=cmd_fig7)

    p_props = sub.add_parser(
        "props", help="check the phi-style property catalog on the bank"
    )
    _add_scenario_argument(p_props)
    p_props.add_argument("--verbose", action="store_true")
    p_props.set_defaults(fn=cmd_props)

    p_eval = sub.add_parser(
        "evaluate", help="Monte-Carlo operational evaluation (risk ratio)"
    )
    _add_scenario_argument(p_eval)
    p_eval.add_argument("--encounters", type=int, default=200)
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--threat-fraction", type=float, default=0.5)
    _add_obs_arguments(p_eval)
    p_eval.set_defaults(fn=cmd_evaluate)

    p_stats = sub.add_parser(
        "stats", help="summarize a JSONL trace (phase timings, slowest cells) "
        "or a live campaign snapshot (--live)"
    )
    p_stats.add_argument(
        "trace", nargs="?", help="trace file written via --trace-out"
    )
    p_stats.add_argument(
        "--metrics", help="metrics snapshot written via --metrics-out"
    )
    p_stats.add_argument(
        "--top", type=int, default=10, help="how many slowest cells to list"
    )
    p_stats.add_argument(
        "--live", metavar="RUN",
        help="print one watch-style frame for this run id / directory / "
        "status.json instead of summarizing a trace",
    )
    p_stats.add_argument(
        "--live-dir",
        help="live-status directory (default: $REPRO_LIVE or .repro/live)",
    )
    p_stats.set_defaults(fn=cmd_stats)

    p_watch = sub.add_parser(
        "watch", help="follow a running campaign live (worker table, "
        "verdict bar, stall detection)"
    )
    p_watch.add_argument(
        "run", nargs="?",
        help="run id, run directory, or status.json path (default: the "
        "newest live run, preferring one still running)",
    )
    p_watch.add_argument(
        "--live-dir",
        help="live-status directory (default: $REPRO_LIVE or .repro/live)",
    )
    p_watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    p_watch.set_defaults(fn=cmd_watch)

    p_report = sub.add_parser(
        "report",
        help="render ledger runs as a self-contained HTML dashboard",
    )
    p_report.add_argument(
        "runs",
        nargs="*",
        help="run ids, record paths, or `latest[:kind]` (default: last N runs)",
    )
    p_report.add_argument(
        "--ledger-dir",
        help="run-ledger directory (default: $REPRO_LEDGER or .repro/runs)",
    )
    p_report.add_argument(
        "--last", type=int, default=10,
        help="with no explicit runs: use the newest N ledger runs",
    )
    p_report.add_argument(
        "--trace",
        help="JSONL trace for the flamegraph (default: the primary "
        "record's recorded trace path, if it still exists)",
    )
    p_report.add_argument(
        "--report-json",
        help="verification report JSON to inline as the Fig. 9a safety map",
    )
    p_report.add_argument(
        "--out", default="report.html", help="output HTML path"
    )
    p_report.set_defaults(fn=cmd_report)

    p_compare = sub.add_parser(
        "compare",
        help="diff two ledger runs; non-zero exit on perf/coverage regression",
    )
    p_compare.add_argument(
        "runs",
        nargs="*",
        help="BASELINE [CANDIDATE]: run ids, record paths, or `latest[:kind]` "
        "(candidate defaults to the newest ledger run)",
    )
    p_compare.add_argument(
        "--baseline",
        help="baseline record path (e.g. benchmarks/baseline.json); the "
        "positional then names the candidate",
    )
    p_compare.add_argument(
        "--ledger-dir",
        help="run-ledger directory (default: $REPRO_LEDGER or .repro/runs)",
    )
    p_compare.add_argument(
        "--threshold", type=float, default=1.25,
        help="flag a phase slower than baseline by more than this factor",
    )
    p_compare.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="ignore phases whose candidate total is below this (noise floor)",
    )
    p_compare.add_argument(
        "--coverage-tolerance", type=float, default=0.0,
        help="allowed coverage drop in percentage points",
    )
    p_compare.set_defaults(fn=cmd_compare)

    p_check = sub.add_parser(
        "check",
        help="soundness lint: interprocedural directed-rounding discipline "
        "(rules S001-S008) plus the concurrency-safety pass (C001-C005)",
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro; "
        "directories are filtered by the [tool.repro.soundness] policy, "
        "explicit files are always checked)",
    )
    p_check.add_argument(
        "--format", choices=["text", "json", "github", "sarif"], default="text",
        help="output format (github emits workflow annotations, "
        "sarif emits SARIF 2.1.0 for code-scanning upload)",
    )
    p_check.add_argument(
        "--baseline",
        help="baseline JSON path (default: soundness-baseline.json if present)",
    )
    p_check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; report every finding as new",
    )
    p_check.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p_check.add_argument(
        "--select", action="append",
        help="only run these rule codes (repeatable or comma-separated, "
        "e.g. --select S001,S004)",
    )
    p_check.add_argument(
        "--changed-only", action="store_true",
        help="report findings only in files changed vs HEAD "
        "(git diff --name-only; the whole-program analysis still runs)",
    )
    p_check.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash analysis cache",
    )
    p_check.add_argument(
        "--cache",
        help="analysis cache path (default: .repro/check-cache.json)",
    )
    p_check.set_defaults(fn=cmd_check)

    p_export = sub.add_parser(
        "export", help="write the trained bank as .nnet files"
    )
    _add_scenario_argument(p_export)
    p_export.add_argument("directory")
    p_export.set_defaults(fn=cmd_export)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # ``repro stats ... | head`` closing stdout early is not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
