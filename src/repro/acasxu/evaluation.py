"""Operational (Monte-Carlo) evaluation of the ACAS controller.

Collision-avoidance systems are traditionally scored on encounter sets
by the *risk ratio* — the probability of a near mid-air collision with
the system on, divided by the probability with it off — together with
nuisance metrics (alert rate, maneuver duration). These statistics
complement the formal analysis: the verification map says *where*
safety is proved, the risk ratio says *how much* the controller buys
on a random encounter distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core import ClosedLoopSystem
from .dynamics import AcasXuAnalyticFlow
from .mdp import TURN_RATES_DEG
from .scenario import (
    COC_INDEX,
    sample_collision_course_state,
    sample_initial_state,
)


@dataclass
class EncounterStats:
    """Aggregate statistics over a Monte-Carlo encounter set."""

    encounters: int
    nmacs_with_system: int
    nmacs_without_system: int
    alerts: int
    mean_min_separation_ft: float
    mean_alert_steps: float

    @property
    def risk_ratio(self) -> float:
        """P(NMAC | system on) / P(NMAC | system off); lower is better.

        Infinity when the unequipped baseline never collides (then the
        ratio carries no information on this encounter set).
        """
        if self.nmacs_without_system == 0:
            return math.inf
        return self.nmacs_with_system / self.nmacs_without_system

    @property
    def alert_rate(self) -> float:
        return self.alerts / max(self.encounters, 1)


def evaluate_controller(
    system: ClosedLoopSystem,
    encounters: int = 200,
    seed: int = 0,
    nmac_radius_ft: float = 500.0,
    samples_per_period: int = 4,
    threat_fraction: float = 0.5,
    threat_jitter_rad: float = 0.08,
) -> EncounterStats:
    """Monte-Carlo evaluation on random sensor-ring encounters.

    Each encounter is flown twice from the same initial state: once
    with the controller (closed loop) and once unequipped (ownship
    flies straight), and the minimum separation of both runs is
    recorded. ``threat_fraction`` of the encounters are drawn from the
    collision-course-biased sampler (standard ACAS evaluation practice —
    uniform inward encounters rarely thread the NMAC cylinder, so an
    unbiased set estimates the risk ratio poorly).
    """
    if not 0.0 <= threat_fraction <= 1.0:
        raise ValueError("threat_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    flow = AcasXuAnalyticFlow()
    horizon = system.horizon_steps

    nmac_on = 0
    nmac_off = 0
    alerts = 0
    min_seps: list[float] = []
    alert_steps_total = 0

    for index in range(encounters):
        if rng.random() < threat_fraction:
            s0 = sample_collision_course_state(rng, jitter_rad=threat_jitter_rad)
        else:
            s0 = sample_initial_state(rng)

        # Unequipped run: ownship holds COC (straight flight).
        min_off = _fly(flow, s0, [COC_INDEX] * horizon, samples_per_period, system)
        nmac_off += min_off < nmac_radius_ft

        # Equipped run.
        state = s0.copy()
        command = COC_INDEX
        min_on = math.hypot(state[0], state[1])
        alerted = False
        alert_steps = 0
        for j in range(horizon):
            if system.target.contains_point(state):
                break
            next_command = system.controller.execute(state, command)
            u = system.commands.value(command)
            if command != COC_INDEX:
                alerted = True
                alert_steps += 1
            for k in range(1, samples_per_period + 1):
                point = flow.flow_point(state, u, system.period * k / samples_per_period)
                min_on = min(min_on, math.hypot(point[0], point[1]))
            state = point
            command = next_command
        nmac_on += min_on < nmac_radius_ft
        alerts += alerted
        alert_steps_total += alert_steps
        min_seps.append(min_on)

    return EncounterStats(
        encounters=encounters,
        nmacs_with_system=nmac_on,
        nmacs_without_system=nmac_off,
        alerts=alerts,
        mean_min_separation_ft=float(np.mean(min_seps)) if min_seps else 0.0,
        mean_alert_steps=alert_steps_total / max(encounters, 1),
    )


def _fly(
    flow: AcasXuAnalyticFlow,
    s0: np.ndarray,
    commands: list[int],
    samples_per_period: int,
    system: ClosedLoopSystem,
) -> float:
    """Minimum separation flying a fixed command sequence."""
    state = s0.copy()
    min_sep = math.hypot(state[0], state[1])
    for command in commands:
        if system.target.contains_point(state):
            break
        u = system.commands.value(command)
        for k in range(1, samples_per_period + 1):
            point = flow.flow_point(state, u, system.period * k / samples_per_period)
            min_sep = min(min_sep, math.hypot(point[0], point[1]))
        state = point
    return min_sep
