"""Training and caching of the 5 ACAS Xu networks (Example 3).

Each network approximates one score table (one per previous advisory),
with the paper's architecture — 6 hidden layers of 50 ReLU nodes, 5
inputs, 5 outputs — trained by supervised regression exactly as the
original networks were (Julian et al. [16]). Training is deterministic
(seeded) and the results are cached on disk, keyed by the table and
network configurations, so tests and benchmarks pay the cost once.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn import Network, TrainingConfig, load_npz, save_npz, train_regression
from ..obs import get_recorder
from .controller import normalize_inputs
from .mdp import NUM_ADVISORIES, AcasTables, TableConfig, generate_tables

logger = logging.getLogger("repro.acasxu")

#: Exceptions a corrupt/truncated ``.npz`` can raise out of ``np.load``:
#: a torn write is not a zip (``BadZipFile``), a short file trips
#: ``OSError``/``EOFError``, and a file with the wrong arrays raises
#: ``KeyError``/``ValueError`` when unpacked.
_CACHE_LOAD_ERRORS = (zipfile.BadZipFile, OSError, EOFError, KeyError, ValueError)


@dataclass(frozen=True)
class NetworkBankConfig:
    """Architecture and training recipe for the 5-network bank."""

    hidden_layers: int = 6
    width: int = 50
    epochs: int = 150
    random_samples: int = 12000
    learning_rate: float = 2e-3
    seed: int = 0

    def key(self) -> str:
        payload = json.dumps(self.__dict__, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: Paper-faithful architecture (Example 3: 6 hidden layers x 50 nodes).
PAPER_NETWORKS = NetworkBankConfig()
#: Small bank for fast tests: same wiring, fraction of the capacity.
TINY_NETWORKS = NetworkBankConfig(
    hidden_layers=2, width=16, epochs=60, random_samples=3000
)


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-nncs"


def _training_data(
    tables: AcasTables, prev: int, config: NetworkBankConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Grid points plus random interpolated samples for one advisory."""
    cfg = tables.config
    grid = tables.grid_points()
    rng = np.random.default_rng(config.seed + prev)
    random_points = np.column_stack(
        [
            rng.uniform(0.0, cfg.rho_max, config.random_samples),
            rng.uniform(-np.pi, np.pi, config.random_samples),
            rng.uniform(-cfg.psi_max, cfg.psi_max, config.random_samples),
        ]
    )
    points = np.vstack([grid, random_points])
    targets = np.array(
        [tables.scores(prev, r, t, p) for r, t, p in points]
    )
    # Center the scores per state: the shared state-value level dwarfs
    # the per-advisory differentials that actually decide the argmin, so
    # regressing raw scores would spend all capacity on the level.
    # Centering and rescaling are argmin-invariant, so the controller
    # semantics are unchanged.
    targets = targets - targets.mean(axis=1, keepdims=True)
    spread = targets.std() or 1.0
    targets = targets / spread
    raw_inputs = np.column_stack(
        [
            points,
            np.full(len(points), cfg.v_own),
            np.full(len(points), cfg.v_int),
        ]
    )
    return normalize_inputs(raw_inputs), targets


def train_network_bank(
    tables: AcasTables, config: NetworkBankConfig | None = None
) -> list[Network]:
    """Train the 5 networks from scratch (deterministic given seeds)."""
    config = config or PAPER_NETWORKS
    layer_sizes = [5] + [config.width] * config.hidden_layers + [NUM_ADVISORIES]
    networks: list[Network] = []
    for prev in range(NUM_ADVISORIES):
        inputs, targets = _training_data(tables, prev, config)
        net = Network.random(layer_sizes, np.random.default_rng(config.seed + 100 + prev))
        train_regression(
            net,
            inputs,
            targets,
            TrainingConfig(
                epochs=config.epochs,
                learning_rate=config.learning_rate,
                seed=config.seed + 200 + prev,
            ),
        )
        networks.append(net)
    return networks


def _discard_corrupt(path: Path, error: Exception) -> None:
    """Log + emit a cache-corruption event and delete the bad entry."""
    logger.warning("corrupt cache entry %s (%s); regenerating", path, error)
    get_recorder().event(
        "cache.corrupt", path=str(path), error=type(error).__name__
    )
    get_recorder().inc("acasxu.cache.corrupt")
    path.unlink(missing_ok=True)


def load_or_train_networks(
    table_config: TableConfig | None = None,
    network_config: NetworkBankConfig | None = None,
    cache_dir: Path | None = None,
) -> tuple[list[Network], AcasTables]:
    """Load the network bank (and tables) from cache, or build them.

    Returns ``(networks, tables)``. The cache key covers both configs,
    so different resolutions/architectures coexist. Corrupt cache
    entries (truncated ``.npz`` from an interrupted write, bad bytes on
    disk) are detected, reported as ``cache.corrupt`` events, deleted
    and regenerated instead of crashing the caller.
    """
    rec = get_recorder()
    table_config = table_config or TableConfig()
    network_config = network_config or PAPER_NETWORKS
    cache_dir = cache_dir or default_cache_dir()
    key = f"{table_config.key()}-{network_config.key()}"
    bank_dir = cache_dir / key
    bank_dir.mkdir(parents=True, exist_ok=True)

    tables_path = bank_dir / "tables.npz"
    tables = None
    if tables_path.exists():
        try:
            tables = AcasTables.load(tables_path, table_config)
            rec.inc("acasxu.cache.hit")
        except _CACHE_LOAD_ERRORS as exc:
            _discard_corrupt(tables_path, exc)
    if tables is None:
        rec.inc("acasxu.cache.miss")
        with rec.span("tables.generate", key=key):
            tables = generate_tables(table_config)
        tables.save(tables_path)

    paths = [bank_dir / f"network_{i}.npz" for i in range(NUM_ADVISORIES)]
    if all(p.exists() for p in paths):
        networks: list[Network] = []
        for path in paths:
            try:
                networks.append(load_npz(path))
            except _CACHE_LOAD_ERRORS as exc:
                _discard_corrupt(path, exc)
                break
        if len(networks) == len(paths):
            rec.inc("acasxu.cache.hit")
            return networks, tables
    rec.inc("acasxu.cache.miss")

    with rec.span("networks.train", key=key):
        networks = train_network_bank(tables, network_config)
    for net, path in zip(networks, paths):
        save_npz(net, path)
    return networks, tables
