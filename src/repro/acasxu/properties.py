"""Network-level phi-style properties for the ACAS Xu bank.

Before system-level verification existed, the ACAS networks were
checked against isolated pre/post-condition properties (Reluplex's
phi-1..phi-10, ReluVal [25]); Section 2 of the paper surveys this line
of work. This module states the analogous properties for *our* trained
bank, in our geometry and normalization, so the ReluVal-substitute
engine can be exercised standalone and regressions in the trained
networks are caught early.

Because our score tables are synthetic, thresholds-on-raw-scores
(phi-1's shape) are meaningless; the catalog uses the *relational*
shapes (argmin membership), which are invariant to the score scaling
used during distillation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..intervals import Box
from ..nn import Network
from ..verify import (
    BisectionSettings,
    OutputProperty,
    VerificationResult,
    label_minimal,
    label_not_minimal,
    verify_property,
)
from .controller import normalize_inputs
from .mdp import ADVISORIES


def raw_input_box(
    rho: tuple[float, float],
    theta: tuple[float, float],
    psi: tuple[float, float],
    v_own: float = 700.0,
    v_int: float = 600.0,
) -> Box:
    """Normalized network-input box from raw geometry ranges."""
    lo = normalize_inputs(np.array([rho[0], theta[0], psi[0], v_own, v_int]))
    hi = normalize_inputs(np.array([rho[1], theta[1], psi[1], v_own, v_int]))
    return Box(np.minimum(lo, hi), np.maximum(lo, hi))


@dataclass(frozen=True)
class AcasProperty:
    """A named property bound to one network of the bank."""

    name: str
    #: Index of the previous advisory selecting the network (lambda).
    previous_advisory: int
    property: OutputProperty
    #: Human-readable rationale, kept for reports.
    rationale: str = ""


def standard_properties() -> list[AcasProperty]:
    """The catalog: entry-alert, benign-COC and turn-direction shapes."""
    props: list[AcasProperty] = []

    # P1 (phi-3 shape): a head-on threat appearing at sensor range must
    # raise an alert — COC is never the advisory.
    props.append(
        AcasProperty(
            name="P1-entry-alert",
            previous_advisory=0,
            property=label_not_minimal(
                "head-on at entry => not COC",
                raw_input_box(
                    rho=(7300.0, 7900.0),
                    theta=(-0.04, 0.04),
                    psi=(math.pi - 0.06, math.pi - 0.01),
                ),
                index=0,
            ),
            rationale="entry range is where maneuvering buys separation; "
            "the tables alert there, the networks must too",
        )
    )

    # P2: an intruder far behind and departing is no threat — COC.
    props.append(
        AcasProperty(
            name="P2-benign-coc",
            previous_advisory=0,
            property=label_minimal(
                "departing astern => COC",
                raw_input_box(
                    rho=(5000.0, 6000.0),
                    theta=(math.pi - 0.15, math.pi - 0.05),
                    psi=(-0.05, 0.05),
                ),
                index=0,
            ),
            rationale="no collision course: alerting here would be the "
            "nuisance-alert failure mode",
        )
    )

    # P3/P4 (phi-4 shape): with a strong maneuver in progress against a
    # crossing threat, the bank must not flip to the opposite strong
    # turn (the dithering hazard).
    props.append(
        AcasProperty(
            name="P3-no-reversal-sr",
            previous_advisory=4,  # currently SR
            property=label_not_minimal(
                "crossing-from-left engagement, prev SR => not SL",
                raw_input_box(
                    rho=(2500.0, 3500.0),
                    theta=(0.45, 0.55),
                    psi=(-2.0, -1.9),
                ),
                index=3,
            ),
            rationale="advisory reversals cancel the maneuver; the switch "
            "cost shapes the tables against them",
        )
    )
    props.append(
        AcasProperty(
            name="P4-no-reversal-sl",
            previous_advisory=3,  # currently SL
            property=label_not_minimal(
                "crossing-from-right engagement, prev SL => not SR",
                raw_input_box(
                    rho=(2500.0, 3500.0),
                    theta=(-0.55, -0.45),
                    psi=(1.9, 2.0),
                ),
                index=4,
            ),
            rationale="mirror of P3",
        )
    )
    return props


@dataclass
class CatalogResult:
    """Outcome of checking the catalog against a network bank."""

    results: dict[str, VerificationResult]

    def verified_names(self) -> list[str]:
        return [n for n, r in self.results.items() if r.verified]

    def falsified_names(self) -> list[str]:
        from ..verify import Outcome

        return [
            n for n, r in self.results.items() if r.outcome is Outcome.FALSIFIED
        ]

    def summary(self) -> str:
        lines = []
        for name, result in self.results.items():
            lines.append(f"{name}: {result.outcome.value}")
        return "\n".join(lines)


def check_catalog(
    networks: list[Network],
    properties: list[AcasProperty] | None = None,
    settings: BisectionSettings | None = None,
) -> CatalogResult:
    """Verify every catalog property against its bank network."""
    properties = properties or standard_properties()
    settings = settings or BisectionSettings(max_depth=14)
    results: dict[str, VerificationResult] = {}
    for prop in properties:
        network = networks[prop.previous_advisory]
        results[prop.name] = verify_property(
            network, prop.property, settings=settings
        )
    return CatalogResult(results=results)
