"""The lookup-table ACAS Xu controller (the pre-neural-network design).

This is the design the networks were distilled from: each control step
interpolates the score table selected by the previous advisory and
takes the advisory with the minimal score. It serves three roles here:

* training-data generator for the 5 networks;
* reference/baseline controller (the thing the networks approximate);
* robust fallback for the runtime monitor (Section 7.2's suggestion).
"""

from __future__ import annotations

import numpy as np

from .dynamics import polar_from_cartesian
from .mdp import AcasTables


class LookupTableController:
    """Concrete controller driven directly by the score tables.

    Matches the concrete interface of
    :class:`repro.core.system.Controller` (``execute`` plus the
    ``commands`` attribute), so it can stand in for the network
    controller in simulation, evaluation and monitoring code. It has no
    abstract semantics — that is precisely why the paper needed the
    network verification machinery once tables were replaced by
    networks.
    """

    def __init__(self, tables: AcasTables):
        from .controller import command_set

        self.tables = tables
        self.commands = command_set()

    def scores(self, state: np.ndarray, previous_command: int) -> np.ndarray:
        rho, theta = polar_from_cartesian(state)
        psi = float(state[2])
        return self.tables.scores(previous_command, rho, theta, psi)

    def execute(self, state: np.ndarray, previous_command: int) -> int:
        return int(np.argmin(self.scores(state, previous_command)))
