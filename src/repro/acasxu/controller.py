"""The neural ACAS Xu controller: Pre, Post, lambda and their abstract
transformers (Section 4.3, Example 3; Fig. 5).

Pre-processing turns the sampled plant state ``(x, y, psi, v_own,
v_int)`` into the network input: cylindrical coordinates ``(rho,
theta)`` replace ``(x, y)``, then the vector is normalized. ``Pre#`` is
the interval (or affine) version of the same computation — sound by
construction on the interval substrate.

Post-processing is the argmin over the 5 advisory scores; ``Post#`` is
the sound possible-argmin of Section 6.3 (via
:func:`repro.verify.possible_argmin`). The selection function ``lambda``
is the identity: previous advisory index -> network index.
"""

from __future__ import annotations

import math

import numpy as np

from ..core import ArgminPost, CommandSet, Controller
from ..intervals import (
    AffineForm,
    Box,
    Interval,
    atan2_affine,
    iatan2,
    ihypot,
)
from ..intervals.batched import bhypot, bmul, bsub
from ..nn import Network
from ..verify import SymbolicPropagator
from .dynamics import PSI, V_INT, V_OWN, X, Y
from .mdp import ADVISORIES, TURN_RATES_DEG

#: Normalization constants (mean, range) per network input
#: (rho, theta, psi, v_own, v_int) — fixed once, shared by training,
#: concrete execution and the abstract transformer.
INPUT_MEANS = np.array([6000.0, 0.0, 0.0, 700.0, 600.0])
INPUT_RANGES = np.array([12000.0, 2.0 * math.pi, 9.0, 200.0, 200.0])

PRE_MODES = ("interval", "affine")


def normalize_inputs(raw: np.ndarray) -> np.ndarray:
    """Normalize raw (rho, theta, psi, v_own, v_int) rows or vectors."""
    return (np.asarray(raw, dtype=float) - INPUT_MEANS) / INPUT_RANGES


class AcasPre:
    """``Pre`` / ``Pre#``: cartesian -> cylindrical -> normalized.

    ``mode`` selects the abstract domain for ``Pre#``: plain interval
    arithmetic (the paper's choice, Section 6.6) or affine arithmetic
    (the alternative the paper cites [15]; tighter near the atan2
    nonlinearity, benchmarked in ablation A2/A4).
    """

    def __init__(self, mode: str = "interval"):
        if mode not in PRE_MODES:
            raise ValueError(f"unknown Pre# mode {mode!r}, pick from {PRE_MODES}")
        self.mode = mode

    def concrete(self, state: np.ndarray) -> np.ndarray:
        x, y = float(state[X]), float(state[Y])
        rho = math.hypot(x, y)
        theta = math.atan2(-x, y)
        raw = np.array([rho, theta, float(state[PSI]), float(state[V_OWN]), float(state[V_INT])])
        return normalize_inputs(raw)

    def abstract(self, box: Box) -> Box:
        if self.mode == "interval":
            rho, theta = self._polar_interval(box)
        else:
            rho, theta = self._polar_affine(box)
        raw = [rho, theta, box[PSI], box[V_OWN], box[V_INT]]
        normalized = [
            (raw[i] - float(INPUT_MEANS[i])) * (1.0 / float(INPUT_RANGES[i]))
            for i in range(5)
        ]
        return Box.from_intervals(normalized)

    def abstract_batch(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``Pre#`` over ``(B, 5)`` box-endpoint arrays at once.

        Bitwise identical to :meth:`abstract` row by row: the hypot and
        normalization stages run on the batched interval kernels (whose
        elementwise ops replay the scalar sequence exactly), while the
        atan2 corner evaluations stay on the scalar :func:`iatan2` —
        ``np.arctan2`` is *not* bitwise identical to ``math.atan2``, so
        vectorizing it would change last-ulp corner values.
        """
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if self.mode != "interval":
            boxes = [self.abstract(Box(lo[r], hi[r])) for r in range(lo.shape[0])]
            return np.stack([b.lo for b in boxes]), np.stack([b.hi for b in boxes])
        xlo, xhi = lo[:, X], hi[:, X]
        ylo, yhi = lo[:, Y], hi[:, Y]
        rho_lo, rho_hi = bhypot(xlo, xhi, ylo, yhi)
        count = lo.shape[0]
        theta_lo = np.empty(count)
        theta_hi = np.empty(count)
        for r in range(count):
            theta = iatan2(
                Interval(float(-xhi[r]), float(-xlo[r])),
                Interval(float(ylo[r]), float(yhi[r])),
            )
            theta_lo[r] = theta.lo
            theta_hi[r] = theta.hi
        raw_lo = np.stack(
            [rho_lo, theta_lo, lo[:, PSI], lo[:, V_OWN], lo[:, V_INT]], axis=1
        )
        raw_hi = np.stack(
            [rho_hi, theta_hi, hi[:, PSI], hi[:, V_OWN], hi[:, V_INT]], axis=1
        )
        shifted_lo, shifted_hi = bsub(raw_lo, raw_hi, INPUT_MEANS, INPUT_MEANS)
        inv_ranges = 1.0 / INPUT_RANGES
        return bmul(shifted_lo, shifted_hi, inv_ranges, inv_ranges)

    @staticmethod
    def _polar_interval(box: Box) -> tuple[Interval, Interval]:
        x, y = box[X], box[Y]
        rho = ihypot(x, y)
        theta = iatan2(-x, y)
        return rho, theta

    @staticmethod
    def _polar_affine(box: Box) -> tuple[Interval, Interval]:
        x = AffineForm.from_interval(box[X])
        y = AffineForm.from_interval(box[Y])
        rho_form = (x.sq() + y.sq()).sqrt()
        theta_form = atan2_affine(-x, y)
        rho = rho_form.to_interval().intersect(ihypot(box[X], box[Y]))
        theta = theta_form.to_interval().intersect(iatan2(-box[X], box[Y]))
        return rho, theta


def command_set() -> CommandSet:
    """The 5 advisories as turn-rate commands in rad/s (Example 1)."""
    values = np.array([[math.radians(r)] for r in TURN_RATES_DEG])
    return CommandSet(values, names=list(ADVISORIES))


def build_controller(
    networks: list[Network],
    pre_mode: str = "interval",
    relaxation: str = "reluval",
) -> Controller:
    """Assemble the 5-network ACAS Xu controller (Fig. 5)."""
    if len(networks) != len(ADVISORIES):
        raise ValueError(f"expected {len(ADVISORIES)} networks, got {len(networks)}")
    return Controller(
        networks=networks,
        commands=command_set(),
        pre=AcasPre(pre_mode),
        post=ArgminPost(),
        selector=lambda previous: previous,
        propagator_factory=lambda net: SymbolicPropagator(net, relaxation),
    )
