"""Multi-UAV extension (Section 8 future work).

The paper sketches how the model extends to several equipped aircraft:
"the plant could capture the dynamics of the multiple agents ... and be
combined with several controllers", all executing in the same interval.
This module implements the two-aircraft case: *both* the ownship and
the intruder run the 5-network collision-avoidance controller.

* **Plant** — the same relative state ``(x, y, psi, v_own, v_int)``,
  but the command is now the *pair* of turn rates, so the relative
  heading evolves as ``psi' = u_int - u_own`` and the intruder no
  longer flies straight (no closed-form flow: the generic validated
  Taylor integrator is used).
* **Controller** — a product controller: the ownship evaluates its bank
  on the state as-is; the intruder evaluates the same bank on the
  *mirrored* view (the ownship's position expressed in the intruder's
  body frame). The joint command set is ``U x U`` (25 commands), which
  the symbolic-state machinery handles unchanged — only ``Gamma >= 25``
  is required (Remark 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core import ClosedLoopSystem, CommandSet, Plant
from ..intervals import Box, icos, isin
from ..nn import Network
from ..ode import IntegratorSettings, ODESystem, TaylorIntegrator
from ..ode.ops import gcos, gsin
from ..verify import SymbolicPropagator, possible_argmin
from .controller import AcasPre
from .mdp import ADVISORIES, NUM_ADVISORIES, TURN_RATES_DEG
from .scenario import (
    CONTROL_PERIOD_S,
    HORIZON_STEPS,
    ScenarioConfig,
    erroneous_set,
    target_set,
)


def multi_uav_rhs(t, s, u):
    """Relative kinematics with both aircraft maneuvering.

    ``u = (turn_own, turn_int)`` in rad/s.
    """
    x, y, psi, v_own, v_int = s
    turn_own = float(u[0])
    turn_int = float(u[1])
    sin_psi = gsin(psi)
    cos_psi = gcos(psi)
    return [
        -v_int * sin_psi + turn_own * y,
        v_int * cos_psi - v_own - turn_own * x,
        0.0 * psi + (turn_int - turn_own),
        0.0 * v_own,
        0.0 * v_int,
    ]


MULTI_UAV_ODE = ODESystem(rhs=multi_uav_rhs, dim=5, name="acasxu-two-agents")


def pair_index(own: int, intruder: int) -> int:
    """Joint command index for an (ownship, intruder) advisory pair."""
    return own * NUM_ADVISORIES + intruder

def split_pair(index: int) -> tuple[int, int]:
    """Inverse of :func:`pair_index`."""
    return index // NUM_ADVISORIES, index % NUM_ADVISORIES


def joint_command_set() -> CommandSet:
    """The product command set ``U x U`` (25 turn-rate pairs)."""
    values = []
    names = []
    for own_adv, own_rate in enumerate(TURN_RATES_DEG):
        for int_adv, int_rate in enumerate(TURN_RATES_DEG):
            values.append([math.radians(own_rate), math.radians(int_rate)])
            names.append(f"{ADVISORIES[own_adv]}/{ADVISORIES[int_adv]}")
    return CommandSet(np.array(values), names=names)


def mirror_state(state: np.ndarray) -> np.ndarray:
    """The intruder's view: ownship position in the intruder's frame.

    With relative position ``r`` and relative heading ``psi`` (intruder
    w.r.t. ownship), the ownship seen from the intruder sits at
    ``R(-psi) @ (-r)`` with relative heading ``-psi``; the speed roles
    swap.
    """
    x, y, psi, v_own, v_int = (float(v) for v in state)
    cos_p, sin_p = math.cos(psi), math.sin(psi)
    x2 = -(cos_p * x + sin_p * y)
    y2 = sin_p * x - cos_p * y
    return np.array([x2, y2, -psi, v_int, v_own])


def mirror_box(box: Box) -> Box:
    """Sound interval version of :func:`mirror_state`."""
    x, y, psi = box[0], box[1], box[2]
    cos_p, sin_p = icos(psi), isin(psi)
    x2 = -(cos_p * x + sin_p * y)
    y2 = sin_p * x - cos_p * y
    return Box.from_intervals([x2, y2, -psi, box[4], box[3]])


class MultiUavController:
    """Two synchronized controllers over the joint command set.

    Satisfies the controller interface the reachability core uses
    (``execute`` / ``execute_abstract``), demonstrating the paper's
    claim that the procedure extends to several controllers executing
    in the same interval.
    """

    def __init__(
        self,
        networks: list[Network],
        pre_mode: str = "interval",
        relaxation: str = "reluval",
    ):
        if len(networks) != NUM_ADVISORIES:
            raise ValueError(f"expected {NUM_ADVISORIES} networks")
        self.networks = networks
        self.commands = joint_command_set()
        self.pre = AcasPre(pre_mode)
        self.propagators = [SymbolicPropagator(n, relaxation) for n in networks]

    # Concrete ---------------------------------------------------------
    def _advise(self, view: np.ndarray, prev: int) -> int:
        x = self.pre.concrete(view)
        scores = self.networks[prev].forward(x)
        return int(np.argmin(scores))

    def execute(self, state: np.ndarray, previous_command: int) -> int:
        prev_own, prev_int = split_pair(previous_command)
        own = self._advise(np.asarray(state, dtype=float), prev_own)
        intruder = self._advise(mirror_state(state), prev_int)
        return pair_index(own, intruder)

    # Abstract ----------------------------------------------------------
    def _advise_abstract(self, view: Box, prev: int) -> list[int]:
        x_box = self.pre.abstract(view)
        scores = self.propagators[prev](x_box)
        return possible_argmin(scores)

    def execute_abstract(self, box: Box, previous_command: int) -> list[int]:
        prev_own, prev_int = split_pair(previous_command)
        own_set = self._advise_abstract(box, prev_own)
        int_set = self._advise_abstract(mirror_box(box), prev_int)
        return [pair_index(o, i) for o in own_set for i in int_set]


def build_multi_uav_system(
    config: ScenarioConfig | None = None,
    horizon_steps: int = HORIZON_STEPS,
) -> ClosedLoopSystem:
    """Assemble the two-equipped-aircraft closed loop."""
    from .networks import load_or_train_networks

    config = config or ScenarioConfig()
    networks, _tables = load_or_train_networks(
        config.table_config, config.network_config
    )
    controller = MultiUavController(
        networks, pre_mode=config.pre_mode, relaxation=config.relaxation
    )
    integrator = TaylorIntegrator(MULTI_UAV_ODE, IntegratorSettings(order=5))
    plant = Plant(MULTI_UAV_ODE, integrator)
    return ClosedLoopSystem(
        plant=plant,
        controller=controller,
        period=CONTROL_PERIOD_S,
        erroneous=erroneous_set(),
        target=target_set(),
        horizon_steps=horizon_steps,
        name="acasxu-multi-uav",
    )
