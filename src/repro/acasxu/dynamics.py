"""ACAS Xu plant dynamics (Section 4.2, Example 2 / Eq. 1).

State ``s = (x, y, psi, v_own, v_int)``:

* ``(x, y)`` — intruder position relative to ownship, in the ownship
  body frame (y-axis along the ownship heading, angles counterclockwise);
* ``psi`` — intruder heading relative to the ownship heading;
* ``v_own, v_int`` — speeds, constant in the paper's degraded mode.

The command ``u`` is the ownship turn rate (rad/s, counterclockwise).
The intruder flies straight at constant speed; the ownship turns at the
commanded rate, so in the rotating body frame:

    x'    = -v_int * sin(psi) + u * y
    y'    =  v_int * cos(psi) - v_own - u * x
    psi'  = -u
    v_own' = v_int' = 0

(derivation: relative position b satisfies b' = -u J b + R(-h)(v_i-v_o)
with J the rotation generator; the intruder's inertial heading is
constant so the relative heading changes at -u).

Because ``u`` is piecewise constant, the flow has a closed form: the
intruder's inertial motion is a straight line and the frame rotation is
a pure rotation, giving :class:`AcasXuAnalyticFlow` — an exact validated
integrator that is both tighter and much faster than the generic Taylor
integrator (cross-checked against it in the tests).
"""

from __future__ import annotations

import math

import numpy as np

from ..intervals import Box, BoxBatch, Interval, IntervalBatch, icos, isin
from ..ode import AnalyticFlow, ODESystem
from ..ode.ops import gcos, gsin

STATE_DIM = 5
X, Y, PSI, V_OWN, V_INT = range(STATE_DIM)


def acasxu_rhs(t, s, u):
    """Eq. 1 right-hand side (generic ops: floats/intervals/jets)."""
    x, y, psi, v_own, v_int = s
    turn = float(u[0])
    sin_psi = gsin(psi)
    cos_psi = gcos(psi)
    return [
        -v_int * sin_psi + turn * y,
        v_int * cos_psi - v_own - turn * x,
        0.0 * psi - turn,
        0.0 * v_own,
        0.0 * v_int,
    ]


#: The plant ODE, for use with the generic validated Taylor integrator.
ACASXU_ODE = ODESystem(rhs=acasxu_rhs, dim=STATE_DIM, name="acasxu-kinematics")


class AcasXuAnalyticFlow(AnalyticFlow):
    """Exact validated flow of the relative kinematics.

    With constant turn rate ``u`` over the step, psi(t) = psi0 - u*t and

        z(t) = R(-u t) z0 + v_int * t * (-sin(psi_t), cos(psi_t))
               - v_own * ((1 - cos(u t))/u, sin(u t)/u)

    (the middle term collapses because the frame rotation and the
    intruder's heading rotation cancel: the intruder flies straight in
    inertial space). Evaluating this expression with interval arguments
    — including an interval ``t`` — gives a sound enclosure over a time
    range in one shot.
    """

    dim = STATE_DIM

    def flow_box(self, s0: Box, u: np.ndarray, tau) -> Box:
        t = Interval.coerce(tau)
        turn = float(u[0])
        x0, y0, psi0, v_own, v_int = (s0[i] for i in range(STATE_DIM))

        ut = t * turn
        cos_ut = icos(ut)
        sin_ut = isin(ut)
        psi_t = psi0 - ut

        # R(-u t) z0.
        x_rot = cos_ut * x0 + sin_ut * y0
        y_rot = -(sin_ut * x0) + cos_ut * y0

        # Intruder straight-line displacement, expressed at time t.
        sin_psi_t = isin(psi_t)
        cos_psi_t = icos(psi_t)
        x_int = -(v_int * t * sin_psi_t)
        y_int = v_int * t * cos_psi_t

        # Ownship displacement (rotated into the frame at time t).
        if turn == 0.0:
            x_own = Interval.point(0.0)
            y_own = v_own * t
        else:
            x_own = v_own * ((1.0 - cos_ut) / turn)
            y_own = v_own * (sin_ut / turn)

        return Box.from_intervals(
            [
                x_rot + x_int - x_own,
                y_rot + y_int - y_own,
                psi_t,
                v_own,
                v_int,
            ]
        )

    def flow_box_batch(self, s0: BoxBatch, u_rows: np.ndarray, tau) -> BoxBatch:
        """Vectorized :meth:`flow_box` over a whole box batch.

        Row ``i`` flows under turn rate ``u_rows[i, 0]``; the kernels in
        :mod:`repro.intervals.batched` replicate the scalar op sequence
        exactly, so every row is bitwise identical to the scalar path.
        Rows with zero turn rate take the scalar limit branch via a
        masked divisor and a rowwise select.
        """
        t = Interval.coerce(tau)
        count = s0.count
        turns = np.asarray(u_rows, dtype=float)[:, 0]
        tb = IntervalBatch.coerce(t, (count,))
        turn_b = IntervalBatch.point(turns)
        x0, y0, psi0, v_own, v_int = (s0.column(i) for i in range(STATE_DIM))

        ut = tb * turn_b
        cos_ut = ut.cos()
        sin_ut = ut.sin()
        psi_t = psi0 - ut

        # R(-u t) z0.
        x_rot = cos_ut * x0 + sin_ut * y0
        y_rot = -(sin_ut * x0) + cos_ut * y0

        # Intruder straight-line displacement, expressed at time t.
        sin_psi_t = psi_t.sin()
        cos_psi_t = psi_t.cos()
        x_int = -(v_int * tb * sin_psi_t)
        y_int = v_int * tb * cos_psi_t

        # Ownship displacement: the turn == 0 rows use the straight-line
        # limit, everything else divides by the (masked) turn rate.
        zero = turns == 0.0
        if bool(np.all(zero)):
            x_own = IntervalBatch.point(np.zeros(count))
            y_own = v_own * tb
        else:
            safe = np.where(zero, 1.0, turns)
            safe_b = IntervalBatch.point(safe)
            x_own = v_own * ((1.0 - cos_ut) / safe_b)
            y_own = v_own * (sin_ut / safe_b)
            if bool(np.any(zero)):
                y_straight = v_own * tb
                x_own = IntervalBatch(
                    np.where(zero, 0.0, x_own.lo), np.where(zero, 0.0, x_own.hi)
                )
                y_own = IntervalBatch(
                    np.where(zero, y_straight.lo, y_own.lo),
                    np.where(zero, y_straight.hi, y_own.hi),
                )

        return BoxBatch.from_columns(
            [
                x_rot + x_int - x_own,
                y_rot + y_int - y_own,
                psi_t,
                v_own,
                v_int,
            ]
        )

    def flow_point(self, state: np.ndarray, u: np.ndarray, t: float) -> np.ndarray:
        """Exact concrete flow (float evaluation of the closed form)."""
        x0, y0, psi0, v_own, v_int = (float(v) for v in state)
        turn = float(u[0])
        ut = turn * t
        cos_ut, sin_ut = math.cos(ut), math.sin(ut)
        psi_t = psi0 - ut
        x_rot = cos_ut * x0 + sin_ut * y0
        y_rot = -sin_ut * x0 + cos_ut * y0
        x_int = -v_int * t * math.sin(psi_t)
        y_int = v_int * t * math.cos(psi_t)
        if turn == 0.0:
            x_own, y_own = 0.0, v_own * t
        else:
            x_own = v_own * (1.0 - cos_ut) / turn
            y_own = v_own * sin_ut / turn
        return np.array(
            [x_rot + x_int - x_own, y_rot + y_int - y_own, psi_t, v_own, v_int]
        )


def polar_from_cartesian(state: np.ndarray) -> tuple[float, float]:
    """(rho, theta) of the intruder: range and bearing (Fig. 1).

    With the body frame's y-axis along the heading, a bearing ``theta``
    (counterclockwise) corresponds to position
    ``(x, y) = rho * (-sin(theta), cos(theta))``.
    """
    x, y = float(state[X]), float(state[Y])
    return math.hypot(x, y), math.atan2(-x, y)


def cartesian_from_polar(rho: float, theta: float) -> tuple[float, float]:
    """Inverse of :func:`polar_from_cartesian`."""
    return -rho * math.sin(theta), rho * math.cos(theta)
