"""Synthetic ACAS Xu score tables via encounter-MDP value iteration.

The real ACAS Xu lookup tables are proprietary (>2 GB) and were produced
by dynamic programming on a partially observable encounter model
(Kochenderfer et al.). This module builds a *structurally identical*
substitute: a grid over the encounter geometry ``(rho, theta, psi)``,
one table per previous advisory, five cost columns per cell, solved by
value iteration on the same relative kinematics the plant uses.

The cost design mirrors the published description of the original:

* a large penalty for entering the collision cylinder (500 ft);
* a proximity shaping cost so the policy starts avoiding early;
* a turn cost making Clear-of-Conflict preferred when safe (strong
  turns cost more than weak ones);
* an advisory-switch cost, which is what couples consecutive steps and
  motivates one table per *previous* advisory — the controller
  structure the paper's lambda-selection models.

Tables are deterministic (pure DP, no randomness) and cached as .npz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .dynamics import AcasXuAnalyticFlow, cartesian_from_polar

#: Advisory order matches the paper: COC, WL, WR, SL, SR.
ADVISORIES = ("COC", "WL", "WR", "SL", "SR")
#: Turn rates in deg/s, counterclockwise positive (left turns positive).
TURN_RATES_DEG = (0.0, 1.5, -1.5, 3.0, -3.0)
NUM_ADVISORIES = len(ADVISORIES)


@dataclass(frozen=True)
class TableConfig:
    """Grid resolution and cost model for the synthetic tables."""

    num_rho: int = 17
    num_theta: int = 25
    num_psi: int = 37
    rho_max: float = 12000.0
    psi_max: float = 4.5
    v_own: float = 700.0
    v_int: float = 600.0
    period: float = 1.0
    collision_radius: float = 500.0
    #: The DP penalizes passes below this buffered radius, so the
    #: resulting policy keeps a margin above the 500 ft collision
    #: cylinder (the real tables are shaped the same way: the alerting
    #: logic aims well beyond the bare near-mid-air-collision volume).
    penalty_radius: float = 1800.0
    collision_cost: float = 1000.0
    proximity_cost: float = 40.0
    proximity_scale: float = 1000.0
    turn_cost_weak: float = 2.0
    turn_cost_strong: float = 4.0
    #: Hysteresis: switching advisories is expensive, which commits the
    #: policy to one turn direction at (near-)symmetric encounters
    #: instead of dithering SL/SR and cancelling its own maneuver. It
    #: must exceed the value-interpolation noise at symmetric states.
    switch_cost: float = 15.0
    discount: float = 0.9
    sweeps: int = 60

    def key(self) -> str:
        """Deterministic cache key."""
        import hashlib
        import json

        payload = json.dumps(self.__dict__, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: Small configuration for tests (fast to build, same structure).
TINY_TABLE_CONFIG = TableConfig(num_rho=11, num_theta=17, num_psi=17, sweeps=30)


@dataclass
class AcasTables:
    """The synthetic score tables: ``q_values[prev, ir, it, ip, action]``."""

    rho_grid: np.ndarray
    theta_grid: np.ndarray
    psi_grid: np.ndarray
    q_values: np.ndarray
    config: TableConfig = field(default_factory=TableConfig)

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        return (len(self.rho_grid), len(self.theta_grid), len(self.psi_grid))

    def scores(self, prev: int, rho: float, theta: float, psi: float) -> np.ndarray:
        """Trilinear interpolation of the 5 advisory scores."""
        table = self.q_values[prev]
        idx, w = _interp_weights_single(
            self.rho_grid, self.theta_grid, self.psi_grid, rho, theta, psi
        )
        flat = table.reshape(-1, NUM_ADVISORIES)
        return (flat[idx] * w[:, None]).sum(axis=0)

    def grid_points(self) -> np.ndarray:
        """All grid points as a ``(N, 3)`` array of (rho, theta, psi)."""
        rr, tt, pp = np.meshgrid(
            self.rho_grid, self.theta_grid, self.psi_grid, indexing="ij"
        )
        return np.stack([rr.ravel(), tt.ravel(), pp.ravel()], axis=1)

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path,
            rho_grid=self.rho_grid,
            theta_grid=self.theta_grid,
            psi_grid=self.psi_grid,
            q_values=self.q_values,
        )

    @staticmethod
    def load(path: str | Path, config: TableConfig | None = None) -> "AcasTables":
        with np.load(path) as data:
            return AcasTables(
                rho_grid=data["rho_grid"],
                theta_grid=data["theta_grid"],
                psi_grid=data["psi_grid"],
                q_values=data["q_values"],
                config=config or TableConfig(),
            )


def _make_grids(config: TableConfig) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    # Quadratic spacing in rho: finer resolution close to the ownship.
    unit = np.linspace(0.0, 1.0, config.num_rho)
    rho = config.rho_max * unit**1.5
    theta = np.linspace(-math.pi, math.pi, config.num_theta)
    psi = np.linspace(-config.psi_max, config.psi_max, config.num_psi)
    return rho, theta, psi


def _interp_weights_single(
    rho_grid: np.ndarray,
    theta_grid: np.ndarray,
    psi_grid: np.ndarray,
    rho: float,
    theta: float,
    psi: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Flat indices and weights of the 8 trilinear neighbours."""
    idx, w = _interp_weights_batch(
        rho_grid,
        theta_grid,
        psi_grid,
        np.array([rho]),
        np.array([theta]),
        np.array([psi]),
    )
    return idx[0], w[0]


def _axis_weights(grid: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-axis lower neighbour index and fractional position (clamped)."""
    clamped = np.clip(values, grid[0], grid[-1])
    hi = np.searchsorted(grid, clamped, side="right")
    hi = np.clip(hi, 1, len(grid) - 1)
    lo = hi - 1
    span = grid[hi] - grid[lo]
    frac = np.where(span > 0, (clamped - grid[lo]) / np.where(span > 0, span, 1.0), 0.0)
    return lo, frac


def _interp_weights_batch(
    rho_grid: np.ndarray,
    theta_grid: np.ndarray,
    psi_grid: np.ndarray,
    rho: np.ndarray,
    theta: np.ndarray,
    psi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized trilinear neighbour indices/weights, shape (N, 8)."""
    ir, fr = _axis_weights(rho_grid, rho)
    it, ft = _axis_weights(theta_grid, theta)
    ip, fp = _axis_weights(psi_grid, psi)
    nt, npsi = len(theta_grid), len(psi_grid)

    idx_list = []
    w_list = []
    for dr in (0, 1):
        wr = np.where(dr == 0, 1.0 - fr, fr)
        for dt in (0, 1):
            wt = np.where(dt == 0, 1.0 - ft, ft)
            for dp in (0, 1):
                wp = np.where(dp == 0, 1.0 - fp, fp)
                idx_list.append(((ir + dr) * nt + (it + dt)) * npsi + (ip + dp))
                w_list.append(wr * wt * wp)
    return np.stack(idx_list, axis=1), np.stack(w_list, axis=1)


def generate_tables(config: TableConfig | None = None) -> AcasTables:
    """Run value iteration and return the synthetic tables."""
    config = config or TableConfig()
    rho_grid, theta_grid, psi_grid = _make_grids(config)
    points = np.stack(
        np.meshgrid(rho_grid, theta_grid, psi_grid, indexing="ij"), axis=-1
    ).reshape(-1, 3)
    num_states = points.shape[0]
    flow = AcasXuAnalyticFlow()

    # Precompute, per action: next-state interpolation and the immediate
    # geometric cost of taking the action from each grid state.
    neighbour_idx = np.empty((NUM_ADVISORIES, num_states, 8), dtype=np.int64)
    neighbour_w = np.empty((NUM_ADVISORIES, num_states, 8))
    base_cost = np.empty((NUM_ADVISORIES, num_states))
    turn_costs = _turn_costs(config)

    xy = np.array([cartesian_from_polar(r, t) for r, t in points[:, :2]])
    for action, rate_deg in enumerate(TURN_RATES_DEG):
        u = np.array([math.radians(rate_deg)])
        next_states = np.empty((num_states, 3))
        rho_min = np.empty(num_states)
        for i in range(num_states):
            state = np.array(
                [xy[i, 0], xy[i, 1], points[i, 2], config.v_own, config.v_int]
            )
            end = flow.flow_point(state, u, config.period)
            mid = flow.flow_point(state, u, config.period / 2.0)
            rho_end = math.hypot(end[0], end[1])
            rho_mid = math.hypot(mid[0], mid[1])
            next_states[i, 0] = rho_end
            next_states[i, 1] = math.atan2(-end[0], end[1])
            next_states[i, 2] = end[2]
            rho_min[i] = min(points[i, 0], rho_mid, rho_end)
        idx, w = _interp_weights_batch(
            rho_grid,
            theta_grid,
            psi_grid,
            next_states[:, 0],
            next_states[:, 1],
            next_states[:, 2],
        )
        # Episode ends once the intruder leaves the sensor-range shell:
        # no future cost accrues from there.
        escaped = next_states[:, 0] >= rho_grid[-1]
        w[escaped] = 0.0
        neighbour_idx[action] = idx
        neighbour_w[action] = w
        # Graded penetration cost: deeper incursions below the buffered
        # radius cost more, so the policy keeps maneuvering even when
        # some incursion has become unavoidable (a binary penalty would
        # flatten the landscape there and make it give up).
        penetration = np.maximum(1.0 - rho_min / config.penalty_radius, 0.0)
        base_cost[action] = (
            config.collision_cost * penetration
            + config.proximity_cost
            * np.exp(-np.maximum(rho_min - config.penalty_radius, 0.0) / config.proximity_scale)
            + turn_costs[action]
        )

    switch = config.switch_cost * (
        1.0 - np.eye(NUM_ADVISORIES)
    )  # switch[prev, action]

    # Value iteration over Q[prev, state, action], with the closed
    # loop's one-period actuation delay modelled faithfully: at step j
    # the plant still flies the *previous* advisory (zero-order hold,
    # Section 4.1 — the chosen command u_{j+1} only applies from
    # (j+1)T). So the transition and the geometric cost of the current
    # step are driven by ``prev``; the decision ``a`` selects which
    # advisory (and hence which Q-table) governs the *next* state.
    #
    #   Q[prev](s, a) = c_geo(s; prev) + c_turn(prev) + c_switch(prev, a)
    #                   + discount * V[a](step(s; prev))
    #   V[a](s)       = min_a' Q[a](s, a')
    q = np.zeros((NUM_ADVISORIES, num_states, NUM_ADVISORIES))
    for _ in range(config.sweeps):
        values = q.min(axis=2)
        # interp[prev, a] = V[a] evaluated at the prev-driven next state.
        interp = np.empty((NUM_ADVISORIES, NUM_ADVISORIES, num_states))
        for prev in range(NUM_ADVISORIES):
            for action in range(NUM_ADVISORIES):
                interp[prev, action] = (
                    values[action][neighbour_idx[prev]] * neighbour_w[prev]
                ).sum(axis=1)
        for prev in range(NUM_ADVISORIES):
            for action in range(NUM_ADVISORIES):
                q[prev][:, action] = (
                    base_cost[prev]
                    + switch[prev, action]
                    + config.discount * interp[prev, action]
                )

    shape = (NUM_ADVISORIES, len(rho_grid), len(theta_grid), len(psi_grid), NUM_ADVISORIES)
    return AcasTables(
        rho_grid=rho_grid,
        theta_grid=theta_grid,
        psi_grid=psi_grid,
        q_values=q.reshape(shape),
        config=config,
    )


def _turn_costs(config: TableConfig) -> np.ndarray:
    costs = []
    for rate in TURN_RATES_DEG:
        if rate == 0.0:
            costs.append(0.0)
        elif abs(rate) < 2.0:
            costs.append(config.turn_cost_weak)
        else:
            costs.append(config.turn_cost_strong)
    return np.array(costs)
