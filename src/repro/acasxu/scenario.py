"""The ACAS Xu verification scenario (Examples 1-4, Section 7.1).

Defines the closed-loop system (plant + 5-network controller), the
erroneous set E (collision cylinder, rho < 500 ft), the target set T
(intruder outside the 8000 ft sensor range), the time horizon (tau =
20 s, T = 1 s, so q = 20 control steps), and the ribbon-shaped
partition of the initial states: intruder entering on the sensor circle
with an inward heading cone (Fig. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core import ClosedLoopSystem, Plant
from ..intervals import Box, Interval, icos, isin
from ..ode import IntegratorSettings, TaylorIntegrator
from ..sets import BallSet, OutsideBallSet
from .controller import build_controller
from .dynamics import ACASXU_ODE, AcasXuAnalyticFlow
from .mdp import TINY_TABLE_CONFIG, TableConfig
from .networks import (
    NetworkBankConfig,
    PAPER_NETWORKS,
    TINY_NETWORKS,
    load_or_train_networks,
)

#: Scenario constants (Example 1).
SENSOR_RANGE_FT = 8000.0
COLLISION_RADIUS_FT = 500.0
V_OWN_FT_S = 700.0
V_INT_FT_S = 600.0
CONTROL_PERIOD_S = 1.0
HORIZON_STEPS = 20  # tau = 20 s
COC_INDEX = 0  # initial advisory: Clear-of-Conflict

#: Paper-scale partition (Section 7.1): 629 arcs of 80 ft (0.01 rad at
#: r = 8000 ft) and 316 heading subsets of 0.01 rad covering the
#: inward-pointing cone of width pi.
PAPER_NUM_ARCS = 629
PAPER_NUM_HEADINGS = 316


@dataclass(frozen=True)
class ScenarioConfig:
    """What to build: table/network fidelity and integrator choice."""

    table_config: TableConfig = field(default_factory=TableConfig)
    network_config: NetworkBankConfig = field(default_factory=NetworkBankConfig)
    integrator: str = "analytic"  # "analytic" | "taylor" | "meanvalue"
    pre_mode: str = "interval"  # "interval" | "affine"
    relaxation: str = "reluval"  # NN propagation relaxation
    horizon_steps: int = HORIZON_STEPS

    def __post_init__(self) -> None:
        if self.integrator not in ("analytic", "taylor", "meanvalue"):
            raise ValueError(
                "integrator must be 'analytic', 'taylor' or 'meanvalue'"
            )


#: Fast configuration for tests: tiny tables/networks, same structure.
TINY_SCENARIO = ScenarioConfig(
    table_config=TINY_TABLE_CONFIG, network_config=TINY_NETWORKS
)
#: Paper-faithful configuration (6x50 networks).
PAPER_SCENARIO = ScenarioConfig(
    table_config=TableConfig(), network_config=PAPER_NETWORKS
)


def erroneous_set() -> BallSet:
    """E: near mid-air collision — intruder within 500 ft (Example 1)."""
    return BallSet((0, 1), (0.0, 0.0), COLLISION_RADIUS_FT)


def target_set() -> OutsideBallSet:
    """T: intruder outside the sensor circle R (Example 1)."""
    return OutsideBallSet((0, 1), (0.0, 0.0), SENSOR_RANGE_FT)


def build_system(config: ScenarioConfig | None = None) -> ClosedLoopSystem:
    """Build the full closed-loop ACAS Xu system.

    Trains (or loads from cache) the synthetic tables and networks.
    """
    config = config or ScenarioConfig()
    networks, tables = load_or_train_networks(
        config.table_config, config.network_config
    )
    controller = build_controller(
        networks, pre_mode=config.pre_mode, relaxation=config.relaxation
    )
    if config.integrator == "analytic":
        integrator = AcasXuAnalyticFlow()
    elif config.integrator == "meanvalue":
        from ..ode import MeanValueIntegrator

        integrator = MeanValueIntegrator(ACASXU_ODE, IntegratorSettings(order=5))
    else:
        integrator = TaylorIntegrator(ACASXU_ODE, IntegratorSettings(order=5))
    plant = Plant(ACASXU_ODE, integrator)
    return ClosedLoopSystem(
        plant=plant,
        controller=controller,
        period=CONTROL_PERIOD_S,
        erroneous=erroneous_set(),
        target=target_set(),
        horizon_steps=config.horizon_steps,
        name="acasxu",
        metadata={"tables": tables, "config": config},
    )


def build_tiny_system() -> ClosedLoopSystem:
    """Module-level factory (picklable) for the test-scale system."""
    return build_system(TINY_SCENARIO)


def build_paper_system() -> ClosedLoopSystem:
    """Module-level factory (picklable) for the paper-scale system."""
    return build_system(PAPER_SCENARIO)


# ----------------------------------------------------------------------
# Initial-state partition (Fig. 8)
# ----------------------------------------------------------------------
def _wrap_to_pi(angle: float) -> float:
    """Wrap an angle to [-pi, pi)."""
    return (angle + math.pi) % (2.0 * math.pi) - math.pi


def initial_cell(
    arc_interval: Interval,
    heading_offset_interval: Interval,
    v_own: Interval | None = None,
    v_int: Interval | None = None,
) -> Box:
    """One initial 5-box from a position-angle arc and a heading cone
    slice.

    ``arc_interval`` is the range of the intruder's position angle
    ``phi`` on the sensor circle (measured like the bearing theta:
    counterclockwise from the ownship heading, so the position is
    ``(x, y) = r * (-sin(phi), cos(phi))``). The intruder's relative
    heading is ``psi = phi + pi + delta`` with ``delta`` in
    ``(-pi/2, pi/2)`` the offset from directly-inward;
    ``heading_offset_interval`` is the slice of that cone.
    """
    r = SENSOR_RANGE_FT
    x_iv = -(isin(arc_interval) * r)
    y_iv = icos(arc_interval) * r
    center = _wrap_to_pi(arc_interval.mid + math.pi + heading_offset_interval.mid)
    half = (arc_interval.width + heading_offset_interval.width) / 2.0
    psi_iv = Interval(center - half, center + half)
    return Box.from_intervals(
        [
            x_iv,
            y_iv,
            psi_iv,
            v_own if v_own is not None else Interval.point(V_OWN_FT_S),
            v_int if v_int is not None else Interval.point(V_INT_FT_S),
        ]
    )


def initial_cells(
    num_arcs: int,
    num_headings: int,
    arc_range: tuple[float, float] = (-math.pi, math.pi),
    heading_cone: tuple[float, float] = (-math.pi / 2.0, math.pi / 2.0),
    velocity_uncertainty: float = 0.0,
) -> list[tuple[Box, int, dict]]:
    """The partition of the possible initial states (Section 7.1).

    Returns ``(box, command, tags)`` cells ready for
    :func:`repro.core.verify_partition`; tags carry the arc and heading
    indices plus the arc's center angle (used for the Fig. 9 grouping).

    ``velocity_uncertainty`` widens the (paper-fixed) speeds into
    symmetric intervals of that half-width (ft/s) — an extension beyond
    the paper's "for simplicity" assumption that exercises all five
    state dimensions.
    """
    if num_arcs < 1 or num_headings < 1:
        raise ValueError("partition counts must be positive")
    if velocity_uncertainty < 0.0:
        raise ValueError("velocity uncertainty must be non-negative")
    v_own = Interval(
        V_OWN_FT_S - velocity_uncertainty, V_OWN_FT_S + velocity_uncertainty
    )
    v_int = Interval(
        V_INT_FT_S - velocity_uncertainty, V_INT_FT_S + velocity_uncertainty
    )
    arc_edges = np.linspace(arc_range[0], arc_range[1], num_arcs + 1)
    heading_edges = np.linspace(heading_cone[0], heading_cone[1], num_headings + 1)
    cells: list[tuple[Box, int, dict]] = []
    for a in range(num_arcs):
        arc_iv = Interval(arc_edges[a], arc_edges[a + 1])
        for h in range(num_headings):
            head_iv = Interval(heading_edges[h], heading_edges[h + 1])
            box = initial_cell(arc_iv, head_iv, v_own=v_own, v_int=v_int)
            tags = {
                "arc": a,
                "heading": h,
                "arc_angle": float(arc_iv.mid),
            }
            cells.append((box, COC_INDEX, tags))
    return cells


def paper_scale_cells() -> list[tuple[Box, int, dict]]:
    """The paper's full partition: 629 x 316 = 198,764 cells."""
    return initial_cells(PAPER_NUM_ARCS, PAPER_NUM_HEADINGS)


def sample_initial_state(
    rng: np.random.Generator,
    arc_range: tuple[float, float] = (-math.pi, math.pi),
    heading_cone: tuple[float, float] = (-math.pi / 2.0, math.pi / 2.0),
) -> np.ndarray:
    """A random concrete initial state from the ribbon set I."""
    phi = rng.uniform(*arc_range)
    delta = rng.uniform(*heading_cone)
    psi = _wrap_to_pi(phi + math.pi + delta)
    return np.array(
        [
            -SENSOR_RANGE_FT * math.sin(phi),
            SENSOR_RANGE_FT * math.cos(phi),
            psi,
            V_OWN_FT_S,
            V_INT_FT_S,
        ]
    )


def sample_collision_course_state(
    rng: np.random.Generator,
    jitter_rad: float = 0.05,
    arc_range: tuple[float, float] = (-math.pi, math.pi),
) -> np.ndarray:
    """An initial state on (approximately) a straight-line collision
    course with an unequipped ownship.

    Standard ACAS evaluation practice: uniform encounters rarely thread
    the 500 ft cylinder, so threat-biased encounter sets are used to
    estimate the risk ratio. The intruder heading is chosen so the
    *relative* velocity points at the ownship, then jittered by up to
    ``jitter_rad``.

    Solves ``w(psi) x p = 0`` with ``w(psi) = v_int*dir(psi) - v_own*j``
    the relative velocity: ``sin(psi + phi0)*rho = (v_own/v_int)*p_x``
    with ``phi0 = atan2(p_x, p_y)``, picking the root with ``w·p < 0``
    (inbound).
    """
    # Rejection-sample the entry bearing: with v_own > v_int the
    # ownship outruns the intruder, so only a frontal band of bearings
    # admits a straight-line collision course — the collinear roots
    # must also point *inbound* (w·p < 0), not just be collinear.
    def inbound(psi: float, p_x: float, p_y: float) -> float:
        wx = -V_INT_FT_S * math.sin(psi)
        wy = V_INT_FT_S * math.cos(psi) - V_OWN_FT_S
        return wx * p_x + wy * p_y

    for _attempt in range(1000):
        phi = rng.uniform(*arc_range)
        p_x = -SENSOR_RANGE_FT * math.sin(phi)
        p_y = SENSOR_RANGE_FT * math.cos(phi)
        ratio = (V_OWN_FT_S * p_x) / (V_INT_FT_S * SENSOR_RANGE_FT)
        if abs(ratio) > 0.98:
            continue
        phi0 = math.atan2(p_x, p_y)
        base = math.asin(ratio)
        candidates = [base - phi0, math.pi - base - phi0]
        psi = min(candidates, key=lambda c: inbound(c, p_x, p_y))
        if inbound(psi, p_x, p_y) < 0.0:
            break
    else:  # pragma: no cover - arc_range excludes all feasible bearings
        raise ValueError("no collision-course bearing inside arc_range")
    psi = _wrap_to_pi(psi + rng.uniform(-jitter_rad, jitter_rad))
    return np.array([p_x, p_y, psi, V_OWN_FT_S, V_INT_FT_S])
