"""Export the trained ACAS bank in the standard ``.nnet`` format.

The neural ACAS Xu ecosystem (Reluplex, ReluVal, NNV, ...) exchanges
networks as ``.nnet`` files with embedded input-normalization metadata.
This module writes our trained bank in that format — normalization
constants included, so third-party tools evaluate the *same function*
our controller computes after ``Pre`` — and reads such files back into
a controller.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..nn import NNetMetadata, Network, load_nnet, save_nnet
from .controller import INPUT_MEANS, INPUT_RANGES
from .mdp import ADVISORIES, NUM_ADVISORIES


def bank_metadata() -> NNetMetadata:
    """The normalization metadata matching :mod:`repro.acasxu.controller`.

    Output normalization is the identity: our Post stage consumes raw
    scores (argmin is scale-invariant).
    """
    input_mins = np.array([0.0, -np.pi, -4.5, 100.0, 100.0])
    input_maxes = np.array([12000.0, np.pi, 4.5, 1200.0, 1200.0])
    means = np.append(INPUT_MEANS, 0.0)
    ranges = np.append(INPUT_RANGES, 1.0)
    return NNetMetadata(input_mins, input_maxes, means, ranges)


def export_bank(networks: list[Network], directory: str | Path) -> list[Path]:
    """Write the 5 networks as ``ACASXU_repro_<ADV>.nnet`` files.

    Returns the written paths (one per previous advisory).
    """
    if len(networks) != NUM_ADVISORIES:
        raise ValueError(f"expected {NUM_ADVISORIES} networks, got {len(networks)}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    metadata = bank_metadata()
    paths = []
    for advisory, network in zip(ADVISORIES, networks):
        path = directory / f"ACASXU_repro_{advisory}.nnet"
        save_nnet(
            network,
            path,
            metadata,
            header=(
                f"repro ACAS Xu bank - previous advisory {advisory}; "
                "inputs (rho, theta, psi, v_own, v_int), outputs are "
                "advisory scores (argmin)"
            ),
        )
        paths.append(path)
    return paths


def import_bank(directory: str | Path) -> list[Network]:
    """Read a bank previously written by :func:`export_bank`."""
    directory = Path(directory)
    networks = []
    for advisory in ADVISORIES:
        path = directory / f"ACASXU_repro_{advisory}.nnet"
        if not path.exists():
            raise FileNotFoundError(f"missing bank member: {path}")
        network, _metadata = load_nnet(path)
        networks.append(network)
    return networks
