"""Sound set specifications over plant-state boxes.

The verification problem needs three kinds of queries against the
erroneous set ``E`` and the target set ``T`` (Section 5):

* ``contains_box(box)`` — True only if *every* point of the box is in
  the set (used for the termination test ``([s], u) ⊂ T``);
* ``disjoint_box(box)`` — True only if *no* point of the box is in the
  set (used for the safety test ``R ∩ E = ∅``);
* ``contains_point(point)`` — exact concrete membership.

Both box queries are conservative: they may answer False when the truth
is unclear, which errs on the side of "possibly intersecting" /
"possibly not contained" and therefore preserves soundness of the
overall procedure.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..intervals import Box


@runtime_checkable
class SetSpec(Protocol):
    """Protocol for sound state-set specifications."""

    def contains_box(self, box: Box) -> bool:
        """True only if the whole box lies inside the set."""
        ...

    def disjoint_box(self, box: Box) -> bool:
        """True only if the box does not meet the set."""
        ...

    def contains_point(self, point: np.ndarray) -> bool:
        """Exact membership of a concrete state."""
        ...


class ComplementSet:
    """Complement of another specification.

    The box queries swap roles: a box is inside the complement iff it is
    disjoint from the original set, and vice versa.
    """

    def __init__(self, inner: SetSpec) -> None:
        self.inner = inner

    def contains_box(self, box: Box) -> bool:
        return self.inner.disjoint_box(box)

    def disjoint_box(self, box: Box) -> bool:
        return self.inner.contains_box(box)

    def contains_point(self, point: np.ndarray) -> bool:
        return not self.inner.contains_point(point)

    def __repr__(self) -> str:
        return f"Complement({self.inner!r})"


class UnionSet:
    """Union of specifications."""

    def __init__(self, parts: Sequence[SetSpec]) -> None:
        if not parts:
            raise ValueError("union of zero sets is empty; use EmptySet")
        self.parts = list(parts)

    def contains_box(self, box: Box) -> bool:
        # Sufficient (not complete): one part containing the whole box.
        return any(p.contains_box(box) for p in self.parts)

    def disjoint_box(self, box: Box) -> bool:
        return all(p.disjoint_box(box) for p in self.parts)

    def contains_point(self, point: np.ndarray) -> bool:
        return any(p.contains_point(point) for p in self.parts)

    def __repr__(self) -> str:
        return f"Union({self.parts!r})"


class IntersectionSet:
    """Intersection of specifications."""

    def __init__(self, parts: Sequence[SetSpec]) -> None:
        if not parts:
            raise ValueError("intersection of zero sets is everything; use FullSet")
        self.parts = list(parts)

    def contains_box(self, box: Box) -> bool:
        return all(p.contains_box(box) for p in self.parts)

    def disjoint_box(self, box: Box) -> bool:
        # Sufficient: disjoint from any part.
        return any(p.disjoint_box(box) for p in self.parts)

    def contains_point(self, point: np.ndarray) -> bool:
        return all(p.contains_point(point) for p in self.parts)

    def __repr__(self) -> str:
        return f"Intersection({self.parts!r})"


class EmptySet:
    """The empty set (useful as a trivial E or T)."""

    def contains_box(self, box: Box) -> bool:
        return False

    def disjoint_box(self, box: Box) -> bool:
        return True

    def contains_point(self, point: np.ndarray) -> bool:
        return False

    def __repr__(self) -> str:
        return "EmptySet()"


class FullSet:
    """The full state space."""

    def contains_box(self, box: Box) -> bool:
        return True

    def disjoint_box(self, box: Box) -> bool:
        return False

    def contains_point(self, point: np.ndarray) -> bool:
        return True

    def __repr__(self) -> str:
        return "FullSet()"
