"""Concrete geometric set specifications.

The ACAS Xu scenario uses cylindrical sets over the relative position
(collision disc ``ρ < 500 ft``, sensor-range complement ``ρ > r``);
half-spaces and boxes cover the common shapes of other case studies.
All box queries are interval-arithmetic evaluations, hence sound.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..intervals import Box, Interval, ihypot
from ..intervals.batched import IntervalBatch, badd, bhypot, bmul, bsub


class BallSet:
    """Euclidean ball ``||x[dims] - center|| < radius`` over 2 dimensions.

    ``dims`` selects the coordinates of the plant state that span the
    plane (for ACAS: the relative position ``(x, y)`` at dims (0, 1)).
    """

    def __init__(
        self,
        dims: tuple[int, int],
        center: tuple[float, float],
        radius: float,
    ) -> None:
        if radius <= 0.0:
            raise ValueError("radius must be positive")
        self.dims = dims
        self.center = (float(center[0]), float(center[1]))
        self.radius = float(radius)

    def _distance_interval(self, box: Box) -> Interval:
        dx = box[self.dims[0]] - self.center[0]
        dy = box[self.dims[1]] - self.center[1]
        return ihypot(dx, dy)

    def _distance_batch(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched ``_distance_interval`` over ``(..., n)`` box endpoints
        (bitwise identical to the scalar query per row)."""
        d0, d1 = self.dims
        dx_lo, dx_hi = bsub(lo[..., d0], hi[..., d0], self.center[0], self.center[0])
        dy_lo, dy_hi = bsub(lo[..., d1], hi[..., d1], self.center[1], self.center[1])
        return bhypot(dx_lo, dx_hi, dy_lo, dy_hi)

    def contains_box(self, box: Box) -> bool:
        return self._distance_interval(box).hi < self.radius

    def disjoint_box(self, box: Box) -> bool:
        return self._distance_interval(box).lo >= self.radius

    def contains_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return self._distance_batch(lo, hi)[1] < self.radius

    def disjoint_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return self._distance_batch(lo, hi)[0] >= self.radius

    def contains_point(self, point: np.ndarray) -> bool:
        dx = float(point[self.dims[0]]) - self.center[0]
        dy = float(point[self.dims[1]]) - self.center[1]
        # sound: ok [S002] concrete-point query (simulation/falsification);
        # the verified set checks go through _distance_interval
        return math.hypot(dx, dy) < self.radius

    def __repr__(self) -> str:
        return f"BallSet(dims={self.dims}, center={self.center}, radius={self.radius})"


class OutsideBallSet:
    """Complement of a closed ball: ``||x[dims] - center|| > radius``.

    The ACAS target set ``T`` ("intruder outside sensor range") has this
    shape.
    """

    def __init__(
        self,
        dims: tuple[int, int],
        center: tuple[float, float],
        radius: float,
    ) -> None:
        self._ball = BallSet(dims, center, radius)

    @property
    def radius(self) -> float:
        return self._ball.radius

    def contains_box(self, box: Box) -> bool:
        return self._ball._distance_interval(box).lo > self._ball.radius

    def disjoint_box(self, box: Box) -> bool:
        return self._ball._distance_interval(box).hi <= self._ball.radius

    def contains_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return self._ball._distance_batch(lo, hi)[0] > self._ball.radius

    def disjoint_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return self._ball._distance_batch(lo, hi)[1] <= self._ball.radius

    def contains_point(self, point: np.ndarray) -> bool:
        ball = self._ball
        dx = float(point[ball.dims[0]]) - ball.center[0]
        dy = float(point[ball.dims[1]]) - ball.center[1]
        # sound: ok [S002] concrete-point query (simulation/falsification);
        # the verified set checks go through _distance_interval
        return math.hypot(dx, dy) > ball.radius

    def __repr__(self) -> str:
        return f"Outside{self._ball!r}"


class HalfSpaceSet:
    """Half-space ``normal . x <= offset``."""

    def __init__(self, normal: Sequence[float], offset: float) -> None:
        self.normal = np.asarray(normal, dtype=float)
        self.offset = float(offset)

    def _dot_interval(self, box: Box) -> Interval:
        acc = Interval.point(0.0)
        for i, coef in enumerate(self.normal):
            if coef != 0.0:
                acc = acc + box[i] * float(coef)
        return acc

    def _dot_batch(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        shape = lo.shape[:-1]
        acc_lo = np.zeros(shape)
        acc_hi = np.zeros(shape)
        for i, coef in enumerate(self.normal):
            if coef != 0.0:
                # sound: ok [S001] IntervalBatch.__mul__ applies directed
                # rounding internally; the `*` here is the interval
                # operator, not raw float arithmetic
                term = IntervalBatch(lo[..., i], hi[..., i]) * float(coef)
                acc_lo, acc_hi = badd(acc_lo, acc_hi, term.lo, term.hi)
        return acc_lo, acc_hi

    def contains_box(self, box: Box) -> bool:
        return self._dot_interval(box).hi <= self.offset

    def disjoint_box(self, box: Box) -> bool:
        return self._dot_interval(box).lo > self.offset

    def contains_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return self._dot_batch(lo, hi)[1] <= self.offset

    def disjoint_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return self._dot_batch(lo, hi)[0] > self.offset

    def contains_point(self, point: np.ndarray) -> bool:
        return float(self.normal @ np.asarray(point, dtype=float)) <= self.offset

    def __repr__(self) -> str:
        return f"HalfSpaceSet({self.normal.tolist()} . x <= {self.offset})"


class BoxSet:
    """An axis-aligned box as a set specification."""

    def __init__(self, box: Box) -> None:
        self.box = box

    def contains_box(self, other: Box) -> bool:
        return self.box.contains_box(other)

    def disjoint_box(self, other: Box) -> bool:
        return not self.box.overlaps(other)

    def contains_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return np.all((self.box.lo <= lo) & (hi <= self.box.hi), axis=-1)

    def disjoint_box_batch(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return ~np.all((self.box.lo <= hi) & (lo <= self.box.hi), axis=-1)

    def contains_point(self, point: np.ndarray) -> bool:
        return self.box.contains_point(point)

    def __repr__(self) -> str:
        return f"BoxSet({self.box!r})"


class SublevelSet:
    """Set ``{x : g(x) <= 0}`` for an interval-evaluable function ``g``.

    ``g_interval`` maps a Box to an Interval enclosing the range of
    ``g``; ``g_point`` is the concrete evaluation. This is the generic
    escape hatch for non-polyhedral, non-cylindrical sets.
    """

    def __init__(
        self,
        g_interval: Callable[[Box], Interval],
        g_point: Callable[[np.ndarray], float],
        name: str = "sublevel",
    ) -> None:
        self.g_interval = g_interval
        self.g_point = g_point
        self.name = name

    def contains_box(self, box: Box) -> bool:
        return self.g_interval(box).hi <= 0.0

    def disjoint_box(self, box: Box) -> bool:
        return self.g_interval(box).lo > 0.0

    def contains_point(self, point: np.ndarray) -> bool:
        return self.g_point(np.asarray(point, dtype=float)) <= 0.0

    def __repr__(self) -> str:
        return f"SublevelSet({self.name})"
