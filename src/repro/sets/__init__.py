"""State-set specifications for the initial, erroneous and target sets."""

from .command import PerCommandSet, resolve_for_command
from .geometric import (
    BallSet,
    BoxSet,
    HalfSpaceSet,
    OutsideBallSet,
    SublevelSet,
)
from .spec import (
    ComplementSet,
    EmptySet,
    FullSet,
    IntersectionSet,
    SetSpec,
    UnionSet,
)

__all__ = [
    "BallSet",
    "BoxSet",
    "ComplementSet",
    "EmptySet",
    "FullSet",
    "HalfSpaceSet",
    "IntersectionSet",
    "OutsideBallSet",
    "PerCommandSet",
    "SetSpec",
    "resolve_for_command",
    "SublevelSet",
    "UnionSet",
]
