"""Command-dependent state sets.

The paper's erroneous and target sets live in ``R^l x U`` (Section
4.1): membership may depend on the active command, not just the plant
state (e.g. "a strong turn at low altitude is itself hazardous"). A
:class:`PerCommandSet` maps each command index to a plain
:class:`~repro.sets.spec.SetSpec`; the reachability procedure resolves
it against each symbolic state's concrete command — exact, because
symbolic states carry commands concretely (Definition 7).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..intervals import Box
from .spec import EmptySet, SetSpec


class PerCommandSet:
    """A set ``{(s, u^(i)) : s in spec_i}`` — one spec per command.

    Implements the plain :class:`SetSpec` interface conservatively
    (quantifying over *all* commands) so it degrades soundly when used
    where command information is unavailable, and exposes
    :meth:`for_command` for exact per-command resolution.
    """

    def __init__(
        self,
        by_command: Mapping[int, SetSpec],
        default: SetSpec | None = None,
    ) -> None:
        self.by_command = dict(by_command)
        self.default = default if default is not None else EmptySet()

    def for_command(self, command: int) -> SetSpec:
        """The exact state-set for one command."""
        return self.by_command.get(command, self.default)

    def _all_specs(self) -> list[SetSpec]:
        return list(self.by_command.values()) + [self.default]

    # Conservative command-agnostic queries ------------------------------
    def contains_box(self, box: Box) -> bool:
        """True only if the box is inside the set for *every* command."""
        return all(spec.contains_box(box) for spec in self._all_specs())

    def disjoint_box(self, box: Box) -> bool:
        """True only if the box avoids the set for *every* command."""
        return all(spec.disjoint_box(box) for spec in self._all_specs())

    def contains_point(self, point: np.ndarray) -> bool:
        """Command-agnostic membership: inside for *some* command."""
        return any(spec.contains_point(point) for spec in self._all_specs())

    def contains_state(self, point: np.ndarray, command: int) -> bool:
        """Exact concrete membership of ``(point, command)``."""
        return self.for_command(command).contains_point(point)

    def __repr__(self) -> str:
        return f"PerCommandSet({self.by_command!r}, default={self.default!r})"


def resolve_for_command(spec: object, command: int) -> object:
    """Resolve a possibly command-dependent spec for a concrete command.

    Plain :class:`SetSpec` objects pass through unchanged; objects with
    a ``for_command`` method (e.g. :class:`PerCommandSet`) are resolved
    exactly. Used by the reachability core.
    """
    resolver = getattr(spec, "for_command", None)
    if resolver is None:
        return spec
    return resolver(command)
