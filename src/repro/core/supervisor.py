"""Fault-tolerant campaign execution: the supervised worker pool.

The paper's full evaluation ran for ~12 days (Section 7); at that
scale the execution layer — not the mathematics — is what loses
campaigns. The previous driver was a bare ``Pool.imap``: one worker
OOM-kill or segfault raised out of the pool and discarded everything,
and a runaway cell (stiff dynamics, deep refinement) could hang the
campaign forever. This module replaces it with a supervised pool built
on one duplex pipe per worker:

* **Dead-worker detection and respawn** — a worker that exits (crash,
  OOM-kill, segfault) is detected via pipe EOF / ``exitcode``; its
  in-flight cell is retried on a fresh worker up to
  ``RunnerSettings.max_retries`` times with exponential backoff, then
  quarantined as :data:`~repro.core.reach.Verdict.ABORTED` with the
  failure reason in ``tags["failure"]``.
* **Per-cell wall-clock budgets** — ``RunnerSettings.cell_timeout`` is
  enforced twice: inside the worker by a ``SIGALRM``-based
  :func:`budget_guard` (clean ``TIMED_OUT`` result), and externally by
  the supervisor, which kills workers stuck past a grace margin (hangs
  in native code are immune to ``SIGALRM``).
* **Campaign deadline** — ``RunnerSettings.deadline`` stops
  dispatching once exceeded; in-flight cells drain and the caller gets
  a partial report.
* **Graceful shutdown** — SIGINT/SIGTERM stop dispatching, drain
  in-flight cells (a second signal aborts the drain), flush traces,
  and return the partial results so journals and ledgers stay intact.

Cells must degrade to an explicit quarantine verdict; they must never
take the process down. The recovery paths are exercised
deterministically by :mod:`repro.testing.faults`.
"""

from __future__ import annotations

import heapq
import logging
import multiprocessing
import multiprocessing.connection
import os
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

from ..obs import Recorder, get_recorder, merge_traces, set_recorder, worker_trace_path
from ..obs.live import HeartbeatReporter, get_bus
from ..obs.live import set_bus as set_live_bus
from ..testing.faults import get_fault_injector
from .reach import Verdict
from .result import CellResult

logger = logging.getLogger("repro.core.supervisor")

#: A dispatchable unit: (cell_id, box, command, tags).
Task = tuple

#: Supervisor poll tick (seconds): the upper bound on how stale the
#: liveness / deadline bookkeeping can get.
_TICK = 0.1

#: Extra wall-clock slack past ``cell_timeout`` before the supervisor
#: kills a worker: the in-worker guard should fire first; the external
#: kill is the backstop for hangs in native code.
_KILL_GRACE_MIN = 1.0
_KILL_GRACE_FRACTION = 0.5


# ----------------------------------------------------------------------
# In-process budget machinery (SIGALRM-based, scope-labelled)
# ----------------------------------------------------------------------
class BudgetExceeded(Exception):
    """A wall-clock budget installed by :func:`budget_guard` expired.

    ``scope`` identifies which guard fired (guards nest: the witness
    budget runs inside the cell budget), so handlers can catch their
    own scope and re-raise the rest.
    """

    def __init__(self, scope: str, seconds: float):
        super().__init__(f"{scope} wall-clock budget of {seconds:g}s exceeded")
        self.scope = scope
        self.seconds = seconds


#: Active guards in this process: (absolute monotonic deadline, scope,
#: budget seconds). SIGALRM is armed for the earliest deadline.
_GUARDS: list[tuple[float, str, float]] = []


def _arm_earliest() -> None:
    if not _GUARDS:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        return
    delay = max(1e-4, min(g[0] for g in _GUARDS) - time.monotonic())
    signal.setitimer(signal.ITIMER_REAL, delay)


def _on_alarm(signum, frame) -> None:
    now = time.monotonic()
    due = [g for g in _GUARDS if g[0] <= now + 1e-3]
    if not due:
        # Spurious/early wakeup: re-arm and keep going.
        _arm_earliest()
        return
    deadline, scope, seconds = min(due)
    raise BudgetExceeded(scope, seconds)


def _can_guard() -> bool:
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def budget_guard(seconds: float | None, scope: str = "budget") -> Iterator[None]:
    """Raise :class:`BudgetExceeded` from this block after ``seconds``.

    No-op when ``seconds`` is ``None``/non-positive, off the main
    thread, or on platforms without ``setitimer`` — budgets are a
    best-effort safety net, not a scheduling primitive. Guards nest;
    the earliest deadline fires first and carries its own scope.
    """
    if not seconds or seconds <= 0 or not _can_guard():
        yield
        return
    entry = (time.monotonic() + float(seconds), scope, float(seconds))
    outermost = not _GUARDS
    if outermost:
        previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    # sound: ok [C001] _GUARDS is per-process by design: each fork
    # worker arms budgets against its own copy and nothing reads it
    # across the fork boundary.
    _GUARDS.append(entry)
    _arm_earliest()
    try:
        yield
    finally:
        # sound: ok [C001] same per-process guard stack as the append.
        _GUARDS.remove(entry)
        _arm_earliest()
        if outermost:
            signal.signal(signal.SIGALRM, previous_handler)


# ----------------------------------------------------------------------
# Quarantine: every cell produces a result, whatever happens
# ----------------------------------------------------------------------
def quarantine_result(
    cell_id: str,
    box,
    command: int,
    verdict: Verdict,
    reason: dict,
    elapsed_seconds: float = 0.0,
    attempts: int = 1,
) -> CellResult:
    """A :class:`CellResult` standing in for a cell whose verification
    never completed (crash, timeout, exception). Counts as unproved for
    coverage; the failure detail rides in ``tags["failure"]``."""
    result = CellResult(
        cell_id=cell_id,
        box=box,
        command=command,
        verdict=verdict,
        elapsed_seconds=elapsed_seconds,
        attempts=attempts,
    )
    result.tags["failure"] = reason
    return result


def run_cell_guarded(
    system,
    box,
    command: int,
    settings,
    cell_id: str,
    attempt: int = 0,
) -> CellResult:
    """:func:`~repro.core.runner.verify_cell` wrapped in the budget
    machinery: a cell that exceeds ``cell_timeout`` degrades to
    ``TIMED_OUT``, one that raises degrades to ``ABORTED``. Used by the
    serial driver and by every pool worker — a cell never takes the
    campaign down."""
    from .runner import verify_cell  # deferred: runner imports this module

    rec = get_recorder()
    injector = get_fault_injector()
    started = time.perf_counter()
    try:
        with budget_guard(settings.cell_timeout, scope="cell"):
            if injector is not None:
                injector.on_guarded_cell(cell_id, attempt)
            result = verify_cell(system, box, command, settings, cell_id)
    except BudgetExceeded as exc:
        if exc.scope != "cell":
            raise
        elapsed = time.perf_counter() - started
        rec.inc("runner.cells_timed_out")
        rec.event("cell.timeout", cell_id=cell_id, budget_seconds=exc.seconds)
        logger.warning("cell %s exceeded its %.3gs budget; quarantined", cell_id, exc.seconds)
        return quarantine_result(
            cell_id,
            box,
            command,
            Verdict.TIMED_OUT,
            {"kind": "timeout", "budget_seconds": exc.seconds, "enforced": "budget-guard"},
            elapsed_seconds=elapsed,
            attempts=attempt + 1,
        )
    except Exception as exc:
        elapsed = time.perf_counter() - started
        rec.inc("runner.cells_errored")
        rec.event("cell.error", cell_id=cell_id, error=type(exc).__name__)
        logger.warning(
            "cell %s raised %s: %s; quarantined", cell_id, type(exc).__name__, exc
        )
        return quarantine_result(
            cell_id,
            box,
            command,
            Verdict.ABORTED,
            {"kind": "exception", "error": f"{type(exc).__name__}: {exc}"},
            elapsed_seconds=elapsed,
            attempts=attempt + 1,
        )
    result.attempts = attempt + 1
    return result


# ----------------------------------------------------------------------
# Graceful shutdown: SIGINT/SIGTERM drain instead of discard
# ----------------------------------------------------------------------
@dataclass
class ShutdownFlag:
    """Set by the signal handler; polled by campaign loops."""

    signum: int | None = None

    @property
    def requested(self) -> bool:
        return self.signum is not None

    @property
    def reason(self) -> str | None:
        if self.signum is None:
            return None
        return f"signal:{signal.Signals(self.signum).name}"


@contextmanager
def trap_shutdown_signals() -> Iterator[ShutdownFlag]:
    """Install drain-on-SIGINT/SIGTERM handlers for the block.

    The first signal sets the flag (loops stop dispatching and drain);
    a second one raises ``KeyboardInterrupt`` so an operator can still
    force a stop. No-op off the main thread — the flag then simply
    never fires."""
    flag = ShutdownFlag()
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return

    def handler(signum, frame):
        if flag.requested:
            raise KeyboardInterrupt
        flag.signum = signum
        # Not logger.warning: the logging module takes a lock, and a
        # handler interrupting a frame that already holds it would
        # deadlock. os.write is async-signal-safe.
        os.write(
            2,
            (
                f"received {signal.Signals(signum).name}: draining "
                "in-flight cells, then stopping (repeat to abort "
                "immediately)\n"
            ).encode(),
        )

    previous = {
        sig: signal.signal(sig, handler) for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        yield flag
    finally:
        for sig, prev in previous.items():
            signal.signal(sig, prev)


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------
def _worker_main(
    worker_id: int,
    conn,
    system_factory: Callable[[], object],
    settings,
    parent_trace: str | None,
    observe: bool,
    heartbeat: float | None = None,
) -> None:
    # The parent owns shutdown: a terminal Ctrl-C lands on the whole
    # process group, so workers ignore SIGINT and let the supervisor
    # drain them.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # If the supervisor dies without cleanup (os._exit, SIGKILL, OOM),
    # the worker must not linger: the forked child holds its own copy
    # of the pipe's write end, so ``conn.recv()`` below would never see
    # EOF and the orphan would sit forever — still pinning every fd it
    # inherited (in a distributed campaign, the node's coordinator
    # socket, which keeps the dead node looking alive). Watch the
    # parent's sentinel and exit the moment it fires.
    parent = multiprocessing.parent_process()
    if parent is not None:
        threading.Thread(
            target=lambda: (
                multiprocessing.connection.wait([parent.sentinel]),
                os._exit(1),
            ),
            daemon=True,
            name="parent-watchdog",
        ).start()
    # The forked child inherits the parent's live telemetry bus, whose
    # subscribers hold parent-owned file handles and server threads:
    # drop it. Worker liveness flows back through the pipe instead.
    set_live_bus(None)
    # The forked child inherits the parent's recorder (and its open
    # trace file descriptor, which must not be shared): install a fresh
    # per-worker recorder writing to its own JSONL file.
    if observe:
        trace = worker_trace_path(Path(parent_trace)) if parent_trace is not None else None
        set_recorder(Recorder(trace_path=trace))
        get_recorder().event("worker.start", worker=worker_id, pid=os.getpid())
    else:
        set_recorder(None)

    # The heartbeat thread and the main loop share the pipe; pickling
    # two messages concurrently onto one fd would interleave them.
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    try:
        system = system_factory()
    except BaseException as exc:  # surfaced as a clear parent-side RuntimeError
        try:
            send(("init_error", worker_id, f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        conn.close()
        return
    send(("ready", worker_id, os.getpid()))
    reporter = None
    if heartbeat:
        reporter = HeartbeatReporter(
            lambda payload: send(("heartbeat", worker_id, payload)), heartbeat
        ).start()
    injector = get_fault_injector()
    rec = get_recorder()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent gone
        if message is None:
            break
        seq, cell_id, box, command, tags, attempt = message
        if reporter is not None:
            reporter.begin_cell(cell_id)
        if injector is not None:
            injector.on_worker_cell(cell_id, attempt)
        result = run_cell_guarded(system, box, command, settings, cell_id, attempt)
        result.tags.update(tags)
        if reporter is not None:
            reporter.end_cell()
        delta = None
        if rec.enabled:
            rec.flush()
            # Ship the metrics gathered since the last cell back to the
            # parent; draining keeps deltas disjoint, so the parent can
            # simply fold every payload into its registry.
            delta = rec.metrics.drain()
            if injector is not None:
                delta = injector.corrupt_metrics_payload(cell_id, attempt, delta)
        try:
            send(("result", worker_id, seq, result, delta))
        except OSError:
            break
    if reporter is not None:
        reporter.stop()
    if rec.enabled:
        rec.flush()
    conn.close()


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    id: int
    proc: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    ready: bool = False
    #: (seq, hard-kill monotonic deadline or None) of the in-flight cell.
    current: tuple[int, float | None] | None = None


@dataclass
class SupervisorOutcome:
    """What :func:`run_supervised` produced.

    ``results`` maps task index -> :class:`CellResult` for every cell
    that finished (organically or by quarantine). With no interruption
    it covers every task; after a deadline/signal it is partial.
    """

    results: dict[int, CellResult] = field(default_factory=dict)
    #: None, "deadline", or "signal:<NAME>".
    interrupted: str | None = None
    respawns: int = 0
    retries: int = 0


def _hard_kill_budget(settings) -> float | None:
    if not settings.cell_timeout:
        return None
    return settings.cell_timeout + max(
        _KILL_GRACE_MIN, _KILL_GRACE_FRACTION * settings.cell_timeout
    )


def _terminate(proc: multiprocessing.Process) -> None:
    proc.terminate()
    proc.join(timeout=2.0)
    if proc.is_alive():  # pragma: no cover - stuck in uninterruptible sleep
        proc.kill()
        proc.join(timeout=2.0)


def merge_worker_traces(rec) -> None:
    """Fold per-worker trace files into the parent trace, globally
    ordered by timestamp. Safe to call when tracing is off."""
    parent = getattr(rec, "trace_path", None)
    if not (rec.enabled and parent):
        return
    rec.flush()
    parent_path = Path(parent)
    worker_files = sorted(parent_path.parent.glob(f"{parent_path.stem}.worker-*.jsonl"))
    if not worker_files:
        return
    merged = merge_traces(parent_path, worker_files, delete_sources=True)
    rec.event("trace.merged", workers=len(worker_files), events=merged)
    rec.flush()


def run_supervised(
    system_factory: Callable[[], object],
    tasks: Sequence[Task],
    settings,
    on_result: Callable[[int, CellResult], None] | None = None,
) -> SupervisorOutcome:
    """Run ``tasks`` over a supervised pool of ``settings.workers``
    fork processes.

    ``on_result`` is called in the supervisor loop (parent process,
    completion order) with ``(task_index, result)`` as each cell
    finishes — the checkpoint journal and progress reporting hang off
    it. Worker trace files are merged into the parent trace before
    returning.

    Raises ``RuntimeError`` if a worker's ``system_factory()`` call
    fails: that is a configuration error, not a transient fault.
    """
    rec = get_recorder()
    bus = get_bus()
    outcome = SupervisorOutcome()
    total = len(tasks)
    if total == 0:
        return outcome

    parent_trace = str(rec.trace_path) if getattr(rec, "trace_path", None) else None
    ctx = multiprocessing.get_context("fork")
    pool_size = min(settings.workers, total)
    hard_budget = _hard_kill_budget(settings)
    heartbeat = bus.heartbeat_interval if bus.enabled else None

    pending: deque[int] = deque(range(total))
    retry_heap: list[tuple[float, int]] = []  # (due monotonic time, seq)
    attempts: dict[int, int] = {}  # seq -> attempts already burned
    workers: dict[int, _WorkerHandle] = {}
    next_worker_id = 0
    fatal: Exception | None = None
    draining = False

    def spawn() -> None:
        nonlocal next_worker_id
        wid = next_worker_id
        next_worker_id += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(
                wid, child_conn, system_factory, settings, parent_trace,
                rec.enabled, heartbeat,
            ),
            name=f"repro-worker-{wid}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the child holds its own copy; EOF now means death
        workers[wid] = _WorkerHandle(id=wid, proc=proc, conn=parent_conn)
        bus.publish("worker.spawned", worker=wid)

    def finish(seq: int, result: CellResult) -> None:
        outcome.results[seq] = result
        if on_result is not None:
            on_result(seq, result)

    def quarantine(seq: int, verdict: Verdict, reason: dict, dispatches: int) -> None:
        cell_id, box, command, tags = tasks[seq]
        result = quarantine_result(
            cell_id,
            box,
            command,
            verdict,
            reason,
            attempts=dispatches,
        )
        result.tags.update(tags)
        rec.inc(
            "runner.cells_aborted"
            if verdict is Verdict.ABORTED
            else "runner.cells_timed_out"
        )
        bus.publish(
            "cell.quarantined",
            cell_id=cell_id,
            verdict=verdict.value,
            reason=reason.get("kind"),
            attempts=dispatches,
        )
        bus.publish(
            "cell.finished",
            cell_id=cell_id,
            seq=seq,
            verdict=verdict.value,
            verdict_class=result.verdict_class(),
            elapsed=result.elapsed_seconds,
        )
        finish(seq, result)

    def handle_crash(seq: int, worker: _WorkerHandle) -> None:
        exitcode = worker.proc.exitcode
        cell_id = tasks[seq][0]
        attempts[seq] = attempts.get(seq, 0) + 1
        rec.inc("runner.worker_crashes")
        rec.event(
            "worker.crash",
            worker=worker.id,
            exitcode=exitcode,
            cell_id=cell_id,
            attempt=attempts[seq],
        )
        bus.publish(
            "worker.crash",
            worker=worker.id,
            exitcode=exitcode,
            cell_id=cell_id,
            attempt=attempts[seq],
        )
        if attempts[seq] <= settings.max_retries:
            outcome.retries += 1
            rec.inc("runner.cell_retries")
            delay = min(30.0, settings.retry_backoff * (2 ** (attempts[seq] - 1)))
            logger.warning(
                "worker %d died (exit %s) on %s; retry %d/%d in %.2gs",
                worker.id, exitcode, cell_id, attempts[seq], settings.max_retries, delay,
            )
            bus.publish(
                "cell.retried",
                cell_id=cell_id,
                seq=seq,
                attempt=attempts[seq],
                delay=delay,
            )
            heapq.heappush(retry_heap, (time.monotonic() + delay, seq))
        else:
            logger.error(
                "worker %d died (exit %s) on %s; retries exhausted — quarantined",
                worker.id, exitcode, cell_id,
            )
            quarantine(
                seq,
                Verdict.ABORTED,
                {"kind": "crash", "exitcode": exitcode, "attempts": attempts[seq]},
                dispatches=attempts[seq],
            )

    def handle_message(worker: _WorkerHandle, message) -> None:
        nonlocal fatal
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            bus.publish("worker.ready", worker=worker.id, pid=message[2])
        elif kind == "heartbeat":
            bus.publish("worker.heartbeat", worker=worker.id, **message[2])
        elif kind == "init_error":
            fatal = RuntimeError(
                f"worker {message[1]} could not build the system: "
                f"system_factory() raised {message[2]}"
            )
        elif kind == "result":
            _, _, seq, result, delta = message
            worker.current = None
            bus.publish(
                "cell.finished",
                worker=worker.id,
                cell_id=result.cell_id,
                seq=seq,
                verdict=result.verdict.value,
                verdict_class=result.verdict_class(),
                elapsed=result.elapsed_seconds,
                attempts=result.attempts,
            )
            if delta is not None and rec.enabled:
                try:
                    rec.metrics.merge_snapshot(delta)
                except Exception as exc:
                    rec.inc("runner.corrupt_metric_payloads")
                    rec.event(
                        "metrics.corrupt_payload",
                        worker=worker.id,
                        cell_id=result.cell_id,
                        error=type(exc).__name__,
                    )
                    logger.warning(
                        "discarding corrupt metrics payload from worker %d (%s: %s)",
                        worker.id, type(exc).__name__, exc,
                    )
            finish(seq, result)

    started_at = time.monotonic()
    deadline_at = started_at + settings.deadline if settings.deadline else None

    with trap_shutdown_signals() as stop:
        try:
            for _ in range(pool_size):
                spawn()
            while pending or retry_heap or any(w.current for w in workers.values()):
                if fatal is not None:
                    break
                now = time.monotonic()

                # -- interruption: stop dispatching, drain in-flight --
                if not draining:
                    if stop.requested:
                        outcome.interrupted = stop.reason
                    elif deadline_at is not None and now >= deadline_at:
                        outcome.interrupted = "deadline"
                    if outcome.interrupted:
                        draining = True
                        dropped = len(pending) + len(retry_heap)
                        pending.clear()
                        retry_heap.clear()
                        rec.event(
                            "campaign.interrupted",
                            reason=outcome.interrupted,
                            dropped_cells=dropped,
                        )
                        bus.publish(
                            "campaign.interrupted",
                            reason=outcome.interrupted,
                            dropped_cells=dropped,
                        )
                        logger.warning(
                            "campaign interrupted (%s): %d cells not dispatched; "
                            "draining %d in-flight",
                            outcome.interrupted,
                            dropped,
                            sum(1 for w in workers.values() if w.current),
                        )

                # -- promote due retries ------------------------------
                while retry_heap and retry_heap[0][0] <= now:
                    _, seq = heapq.heappop(retry_heap)
                    pending.append(seq)

                # -- dispatch to idle, ready workers ------------------
                for worker in workers.values():
                    if not pending:
                        break
                    if not (worker.ready and worker.current is None and worker.proc.is_alive()):
                        continue
                    seq = pending.popleft()
                    cell_id, box, command, tags = tasks[seq]
                    try:
                        worker.conn.send(
                            (seq, cell_id, box, command, tags, attempts.get(seq, 0))
                        )
                    except (BrokenPipeError, OSError):
                        pending.appendleft(seq)  # the liveness sweep reaps it
                        continue
                    worker.current = (seq, now + hard_budget if hard_budget else None)
                    bus.publish(
                        "cell.dispatched",
                        worker=worker.id,
                        cell_id=cell_id,
                        seq=seq,
                        attempt=attempts.get(seq, 0),
                    )

                # -- wait for worker messages -------------------------
                conns = {w.conn: w for w in workers.values()}
                tick = _TICK
                if retry_heap:
                    tick = min(tick, max(0.01, retry_heap[0][0] - now))
                try:
                    readable = multiprocessing.connection.wait(list(conns), tick) if conns else []
                except OSError:  # pragma: no cover - racy fd close
                    readable = []
                for conn in readable:
                    worker = conns[conn]
                    try:
                        handle_message(worker, conn.recv())
                    except (EOFError, OSError):
                        continue  # dead: the liveness sweep handles it

                # -- liveness sweep: reap the dead --------------------
                for worker in list(workers.values()):
                    if worker.proc.is_alive():
                        continue
                    # Drain messages the worker managed to send before
                    # dying (a clean result followed by a crash must
                    # not burn a retry).
                    try:
                        while worker.conn.poll():
                            handle_message(worker, worker.conn.recv())
                    except (EOFError, OSError):
                        pass
                    if worker.current is not None:
                        seq, _ = worker.current
                        worker.current = None
                        handle_crash(seq, worker)
                    worker.conn.close()
                    worker.proc.join()
                    del workers[worker.id]

                # -- hard-deadline sweep: kill the stuck --------------
                now = time.monotonic()
                for worker in list(workers.values()):
                    if worker.current is None or worker.current[1] is None:
                        continue
                    seq, kill_at = worker.current
                    if now < kill_at:
                        continue
                    cell_id = tasks[seq][0]
                    logger.warning(
                        "worker %d stuck on %s past the %.3gs budget; killing it",
                        worker.id, cell_id, settings.cell_timeout,
                    )
                    rec.event(
                        "worker.killed", worker=worker.id, cell_id=cell_id,
                        budget_seconds=settings.cell_timeout,
                    )
                    bus.publish(
                        "worker.killed",
                        worker=worker.id,
                        cell_id=cell_id,
                        budget_seconds=settings.cell_timeout,
                    )
                    worker.current = None
                    _terminate(worker.proc)
                    quarantine(
                        seq,
                        Verdict.TIMED_OUT,
                        {
                            "kind": "timeout",
                            "budget_seconds": settings.cell_timeout,
                            "enforced": "supervisor-kill",
                        },
                        dispatches=attempts.get(seq, 0) + 1,
                    )
                    worker.conn.close()
                    del workers[worker.id]

                # -- keep the pool at strength ------------------------
                if not draining and fatal is None:
                    in_flight = sum(1 for w in workers.values() if w.current)
                    needed = min(pool_size, len(pending) + len(retry_heap) + in_flight)
                    while len(workers) < needed:
                        spawn()
                        outcome.respawns += 1
                        rec.inc("runner.worker_respawns")
                        rec.event("worker.respawn")
                        bus.publish("worker.respawn")
        finally:
            for worker in workers.values():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for worker in workers.values():
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    _terminate(worker.proc)
                worker.conn.close()
            merge_worker_traces(rec)

    if fatal is not None:
        raise fatal
    return outcome
