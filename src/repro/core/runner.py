"""Parallel verification over an initial-set partition (Section 7.1).

The paper observes that the ``K0`` initial cells are independent
verification problems, so the partition is embarrassingly parallel.
:func:`verify_partition` distributes cells over a *supervised* worker
pool (:mod:`repro.core.supervisor` — fork-based, so the closed-loop
system object does not need to be picklable) and applies split
refinement to cells that fail. The execution layer is fault-tolerant:
worker crashes are retried and then quarantined as ``ABORTED``, cells
exceeding their wall-clock budget become ``TIMED_OUT``, a campaign
deadline or SIGINT/SIGTERM drains in-flight cells and returns a
partial report.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..intervals import Box, batching_enabled
from ..obs import get_recorder
from ..obs.live import HeartbeatReporter, get_bus
from .partition import RefinementPolicy
from .reach import ReachSettings, Verdict, reach_from_box, reach_many
from .symbolic import SymbolicSet, SymbolicState
from .result import CellResult, VerificationReport
from .supervisor import (
    BudgetExceeded,
    budget_guard,
    merge_worker_traces,
    run_cell_guarded,
    run_supervised,
    trap_shutdown_signals,
)
from .system import ClosedLoopSystem

logger = logging.getLogger("repro.core.runner")

#: Optional counterexample search invoked on failed cells before
#: refinement: (system, box, command) -> concrete unsafe initial state,
#: or None. Section 8 suggests coupling the procedure with an efficient
#: falsification strategy; a found witness proves the cell genuinely
#: unsafe, so refining it further would be wasted work.
WitnessSearch = Callable[[ClosedLoopSystem, Box, int], Optional[np.ndarray]]


@dataclass(frozen=True)
class RunnerSettings:
    """Per-cell reachability settings, the refinement policy, and the
    fault-tolerance budgets enforced by the supervised runner."""

    reach: ReachSettings = field(default_factory=ReachSettings)
    refinement: RefinementPolicy | None = None
    workers: int = 1
    witness_search: WitnessSearch | None = None
    #: Wall-clock budget per top-level cell in seconds, refinement
    #: included (None = unbounded). Enforced in-process via SIGALRM and,
    #: for workers hung in native code, by a supervisor kill; either way
    #: the cell degrades to ``Verdict.TIMED_OUT``.
    cell_timeout: float | None = None
    #: Campaign wall-clock budget in seconds (None = unbounded). Once
    #: exceeded, no further cells are dispatched; in-flight cells drain
    #: and the report is partial.
    deadline: float | None = None
    #: How many times a cell whose worker died is retried (on a fresh
    #: worker, with exponential backoff) before being quarantined as
    #: ``Verdict.ABORTED``.
    max_retries: int = 1
    #: Base of the exponential retry backoff, in seconds.
    retry_backoff: float = 0.25
    #: Wall-clock budget for the ``witness_search`` hook per cell
    #: (None = unbounded); a timed-out search counts as "no witness
    #: found" and refinement proceeds.
    witness_timeout: float | None = None
    #: Verify the partition in lockstep *waves*: all cells (and, per
    #: refinement round, all child cells) advance through the control
    #: steps together, so every step issues one batched integrator call
    #: over the whole wave's symbolic states (the SoA kernels in
    #: :mod:`repro.intervals.batched`). Verdicts are bitwise identical
    #: to the scalar path. Serial mode only (``workers == 1``) and
    #: incompatible with the per-cell/campaign wall-clock budgets,
    #: which are enforced per dispatched cell. ``REPRO_BATCHED=0``
    #: falls back to the scalar per-cell loop.
    batch_cells: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None)")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.witness_timeout is not None and self.witness_timeout <= 0:
            raise ValueError("witness_timeout must be positive (or None)")
        if self.batch_cells:
            if self.workers != 1:
                raise ValueError("batch_cells requires workers == 1")
            if self.cell_timeout is not None or self.deadline is not None:
                raise ValueError(
                    "batch_cells is incompatible with cell_timeout/deadline "
                    "(budgets are enforced per dispatched cell)"
                )


def _search_witness(
    system: ClosedLoopSystem,
    result: CellResult,
    settings: RunnerSettings,
    depth: int,
) -> bool:
    """Run the falsification hook on a failed cell (Section 8 coupling).

    Returns True when a concrete counterexample was found — the cell is
    genuinely unsafe, so split refinement cannot rescue it and the
    caller should skip it. A timed-out search counts as "no witness"."""
    rec = get_recorder()
    cell_id = result.cell_id
    witness = None
    try:
        with budget_guard(settings.witness_timeout, scope="witness"):
            with rec.span("witness_search", cell_id=cell_id):
                witness = settings.witness_search(system, result.box, result.command)
    except BudgetExceeded as exc:
        if exc.scope != "witness":
            raise
        # A stuck falsifier must not stall the cell: treat it as
        # "no witness found" and fall through to refinement.
        result.tags["witness_timeout"] = exc.seconds
        rec.inc("runner.witness_timeouts")
        rec.event("runner.witness_timeout", cell_id=cell_id, budget_seconds=exc.seconds)
        logger.warning(
            "witness search on %s exceeded its %.3gs budget; refining instead",
            cell_id, exc.seconds,
        )
    if witness is None:
        return False
    result.tags["witness"] = [float(v) for v in np.asarray(witness)]
    rec.inc("runner.witnesses")
    rec.event("runner.witness", cell_id=cell_id, depth=depth)
    return True


def verify_cell(
    system: ClosedLoopSystem,
    box: Box,
    command: int,
    settings: RunnerSettings,
    cell_id: str = "cell",
    depth: int = 0,
) -> CellResult:
    """Verify one initial cell, split-refining on failure (Section 7.1).

    The refinement recursion matches the paper: a cell that cannot be
    proved safe is bisected (per the policy) and every child is retried,
    down to ``max_depth``.
    """
    rec = get_recorder()
    started = time.perf_counter()
    with rec.span("cell", cell_id=cell_id, depth=depth, command=command):
        outcome = reach_from_box(system, box, command, settings.reach)
    elapsed = time.perf_counter() - started
    result = CellResult(
        cell_id=cell_id,
        box=box,
        command=command,
        verdict=outcome.verdict,
        depth=depth,
        elapsed_seconds=elapsed,
        steps_completed=outcome.steps_completed,
        joins_performed=outcome.joins_performed,
        integrations=outcome.integrations,
    )
    rec.inc(f"runner.verdict.{outcome.verdict.value}")
    if result.verdict is not Verdict.PROVED_SAFE and settings.witness_search:
        if _search_witness(system, result, settings, depth):
            return result
    policy = settings.refinement
    if (
        result.verdict is not Verdict.PROVED_SAFE
        and policy is not None
        and depth < policy.max_depth
    ):
        rec.inc("runner.refinements")
        with rec.span("refine", cell_id=cell_id, depth=depth + 1):
            for i, child_box in enumerate(policy.children(box)):
                result.children.append(
                    verify_cell(
                        system,
                        child_box,
                        command,
                        settings,
                        cell_id=f"{cell_id}.{i}",
                        depth=depth + 1,
                    )
                )
    return result


# ----------------------------------------------------------------------
# Lockstep (batched) driver
# ----------------------------------------------------------------------
def _verify_cells_lockstep(
    system: ClosedLoopSystem,
    tasks: Sequence[tuple[str, Box, int, dict]],
    settings: RunnerSettings,
) -> list[CellResult]:
    """Verify every cell in lockstep waves (``batch_cells`` mode).

    Wave 0 holds the top-level cells; each refinement round collects
    every failed cell's children into the next wave. Within a wave,
    :func:`~repro.core.reach.reach_many` advances all cells through the
    control steps together, so each step issues one batched integrator
    call over the whole wave. Verdicts, refinement decisions and the
    result tree are identical to the sequential :func:`verify_cell`
    recursion; only the grouping of work (and hence the per-cell
    ``elapsed_seconds`` attribution) differs.
    """
    rec = get_recorder()
    policy = settings.refinement
    top_results: list[CellResult] = []
    wave: list[dict] = []
    for slot, (cell_id, box, command, _tags) in enumerate(tasks):
        wave.append(
            {
                "cell_id": cell_id,
                "box": box,
                "command": command,
                "depth": 0,
                "parent": None,
                "slot": slot,
            }
        )
        top_results.append(None)  # type: ignore[arg-type]
    while wave:
        initials = [
            SymbolicSet([SymbolicState(t["box"], t["command"])]) for t in wave
        ]
        outcomes = reach_many(system, initials, settings.reach)
        next_wave: list[dict] = []
        for task, outcome in zip(wave, outcomes):
            depth = task["depth"]
            result = CellResult(
                cell_id=task["cell_id"],
                box=task["box"],
                command=task["command"],
                verdict=outcome.verdict,
                depth=depth,
                elapsed_seconds=outcome.elapsed_seconds,
                steps_completed=outcome.steps_completed,
                joins_performed=outcome.joins_performed,
                integrations=outcome.integrations,
            )
            rec.inc(f"runner.verdict.{outcome.verdict.value}")
            # Keep the "cell" phase populated for dashboards and the
            # ledger: the scalar driver gets it from the per-cell span,
            # here it is the wave-proportional elapsed attribution.
            rec.observe("cell.seconds", outcome.elapsed_seconds)
            witnessed = False
            if result.verdict is not Verdict.PROVED_SAFE and settings.witness_search:
                witnessed = _search_witness(system, result, settings, depth)
            if (
                not witnessed
                and result.verdict is not Verdict.PROVED_SAFE
                and policy is not None
                and depth < policy.max_depth
            ):
                rec.inc("runner.refinements")
                for i, child_box in enumerate(policy.children(task["box"])):
                    next_wave.append(
                        {
                            "cell_id": f"{task['cell_id']}.{i}",
                            "box": child_box,
                            "command": task["command"],
                            "depth": depth + 1,
                            "parent": result,
                            "slot": None,
                        }
                    )
            if task["parent"] is None:
                top_results[task["slot"]] = result
            else:
                task["parent"].children.append(result)
        wave = next_wave
    return top_results


# ----------------------------------------------------------------------
# Parallel driver
# ----------------------------------------------------------------------
def _notify_progress(progress, done: int, total: int, result: CellResult) -> None:
    """Feed either callback style: rich (``update(done, total, result)``,
    e.g. :class:`repro.obs.CampaignProgress`) or the legacy bare
    ``(done, total)`` callable.

    A raising callback is *logged and counted*, never propagated: a
    broken progress bar must not abort a multi-day campaign.
    """
    if progress is None:
        return
    try:
        update = getattr(progress, "update", None)
        if update is not None:
            update(done, total, result)
        else:
            progress(done, total)
    except Exception as exc:
        rec = get_recorder()
        rec.inc("runner.progress_errors")
        rec.event("runner.progress_error", error=type(exc).__name__, done=done)
        logger.warning(
            "progress callback raised %s: %s (campaign continues)",
            type(exc).__name__, exc,
        )


def _settings_summary(settings: RunnerSettings, interrupted: str | None) -> dict:
    summary = {
        "substeps": settings.reach.substeps,
        "max_symbolic_states": settings.reach.max_symbolic_states,
        "refinement_depth": settings.refinement.max_depth if settings.refinement else 0,
        "workers": settings.workers,
        "cell_timeout": settings.cell_timeout,
        "deadline": settings.deadline,
        "max_retries": settings.max_retries,
        "batch_cells": settings.batch_cells,
    }
    if interrupted:
        summary["interrupted"] = interrupted
    return summary


def verify_partition(
    system_factory: Callable[[], ClosedLoopSystem],
    cells: Sequence[tuple[Box, int]] | Sequence[tuple[Box, int, dict]],
    settings: RunnerSettings | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> VerificationReport:
    """Verify every initial cell of a partition.

    ``cells`` is a sequence of ``(box, command)`` or
    ``(box, command, tags)`` tuples. ``system_factory`` builds the
    closed-loop system — called once in serial mode, once per worker in
    parallel mode (fork start method, so closures are fine). A worker
    whose factory call raises surfaces as a ``RuntimeError`` naming the
    worker and the underlying error.

    ``progress`` is either a bare ``(done, total)`` callable or a rich
    observer with an ``update(done, total, result)`` method (see
    :class:`repro.obs.CampaignProgress` for rate/ETA/verdict counts).

    With ``settings.workers > 1`` the cells run on the supervised pool
    (:func:`repro.core.supervisor.run_supervised`): crashes retry then
    quarantine as ``ABORTED``, budget overruns become ``TIMED_OUT``,
    and a deadline or SIGINT/SIGTERM yields a partial report
    (``settings_summary["interrupted"]`` names the reason).

    When a live :class:`repro.obs.Recorder` is installed, workers
    stream spans to per-worker JSONL files (merged into the parent's
    trace at the end) and ship per-cell metric deltas back; the merged
    snapshot lands in ``report.metrics``.
    """
    settings = settings or RunnerSettings()
    run_started = time.perf_counter()
    tasks = []
    for i, cell in enumerate(cells):
        box, command = cell[0], cell[1]
        tags = dict(cell[2]) if len(cell) > 2 else {}
        tasks.append((f"cell-{i}", box, command, tags))

    rec = get_recorder()
    bus = get_bus()
    bus.publish(
        "campaign.started",
        total=len(tasks),
        workers=settings.workers,
        pid=os.getpid(),
    )
    interrupted: str | None = None
    results: list[CellResult]
    if settings.workers == 1 and settings.batch_cells and batching_enabled():
        # Lockstep wave mode: every control step issues one batched
        # integrator call over all live cells. No per-cell dispatch,
        # budgets or interrupt draining — the wave runs to completion
        # (RunnerSettings rejects batch_cells + budgets up front).
        system = system_factory()
        if bus.enabled:
            bus.publish("worker.ready", worker=0, pid=os.getpid())
        results = _verify_cells_lockstep(system, tasks, settings)
        for i, ((cell_id, _box, _command, tags), result) in enumerate(
            zip(tasks, results)
        ):
            result.tags.update(tags)
            bus.publish(
                "cell.finished",
                worker=0,
                cell_id=cell_id,
                seq=i,
                verdict=result.verdict.value,
                verdict_class=result.verdict_class(),
                elapsed=result.elapsed_seconds,
            )
            _notify_progress(progress, i + 1, len(tasks), result)
    elif settings.workers == 1:
        system = system_factory()
        results = []
        # The serial driver is its own "worker 0": a heartbeat thread
        # beats from this process so stall detection (`repro watch`)
        # works for single-worker campaigns too.
        reporter = None
        if bus.enabled:
            bus.publish("worker.ready", worker=0, pid=os.getpid())
            reporter = HeartbeatReporter(
                lambda payload: bus.publish("worker.heartbeat", worker=0, **payload),
                bus.heartbeat_interval or 1.0,
            ).start()
        try:
            with trap_shutdown_signals() as stop:
                deadline_at = (
                    time.monotonic() + settings.deadline if settings.deadline else None
                )
                for i, (cell_id, box, command, tags) in enumerate(tasks):
                    if stop.requested:
                        interrupted = stop.reason
                    elif deadline_at is not None and time.monotonic() >= deadline_at:
                        interrupted = "deadline"
                    if interrupted:
                        rec.event(
                            "campaign.interrupted",
                            reason=interrupted,
                            dropped_cells=len(tasks) - i,
                        )
                        bus.publish(
                            "campaign.interrupted",
                            reason=interrupted,
                            dropped_cells=len(tasks) - i,
                        )
                        logger.warning(
                            "campaign interrupted (%s): %d cells not run",
                            interrupted, len(tasks) - i,
                        )
                        break
                    bus.publish(
                        "cell.dispatched", worker=0, cell_id=cell_id, seq=i, attempt=0
                    )
                    if reporter is not None:
                        reporter.begin_cell(cell_id)
                    result = run_cell_guarded(system, box, command, settings, cell_id)
                    result.tags.update(tags)
                    if reporter is not None:
                        reporter.end_cell()
                    bus.publish(
                        "cell.finished",
                        worker=0,
                        cell_id=cell_id,
                        seq=i,
                        verdict=result.verdict.value,
                        verdict_class=result.verdict_class(),
                        elapsed=result.elapsed_seconds,
                    )
                    results.append(result)
                    _notify_progress(progress, i + 1, len(tasks), result)
        finally:
            if reporter is not None:
                reporter.stop()
    else:
        done = 0

        def on_result(seq: int, result: CellResult) -> None:
            nonlocal done
            done += 1
            _notify_progress(progress, done, len(tasks), result)

        outcome = run_supervised(system_factory, tasks, settings, on_result=on_result)
        interrupted = outcome.interrupted
        results = [outcome.results[i] for i in sorted(outcome.results)]
        merge_worker_traces(rec)

    report = VerificationReport(cells=results)
    report.wall_seconds = time.perf_counter() - run_started
    report.settings_summary = _settings_summary(settings, interrupted)
    if rec.enabled:
        report.metrics = rec.metrics.snapshot()
    bus.publish(
        "campaign.finished",
        interrupted=interrupted,
        verdicts=report.verdict_counts(),
        coverage=report.coverage_percent(),
        wall_seconds=report.wall_seconds,
    )
    return report
