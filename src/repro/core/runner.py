"""Parallel verification over an initial-set partition (Section 7.1).

The paper observes that the ``K0`` initial cells are independent
verification problems, so the partition is embarrassingly parallel.
:func:`verify_partition` distributes cells over worker processes
(fork-based, so the closed-loop system object does not need to be
picklable) and applies split refinement to cells that fail.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from ..intervals import Box
from ..obs import Recorder, get_recorder, merge_traces, set_recorder, worker_trace_path
from .partition import RefinementPolicy
from .reach import ReachSettings, Verdict, reach_from_box
from .result import CellResult, VerificationReport
from .system import ClosedLoopSystem

#: Optional counterexample search invoked on failed cells before
#: refinement: (system, box, command) -> concrete unsafe initial state,
#: or None. Section 8 suggests coupling the procedure with an efficient
#: falsification strategy; a found witness proves the cell genuinely
#: unsafe, so refining it further would be wasted work.
WitnessSearch = Callable[[ClosedLoopSystem, Box, int], Optional[np.ndarray]]


@dataclass(frozen=True)
class RunnerSettings:
    """Per-cell reachability settings plus the refinement policy."""

    reach: ReachSettings = field(default_factory=ReachSettings)
    refinement: RefinementPolicy | None = None
    workers: int = 1
    witness_search: WitnessSearch | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


def verify_cell(
    system: ClosedLoopSystem,
    box: Box,
    command: int,
    settings: RunnerSettings,
    cell_id: str = "cell",
    depth: int = 0,
) -> CellResult:
    """Verify one initial cell, split-refining on failure (Section 7.1).

    The refinement recursion matches the paper: a cell that cannot be
    proved safe is bisected (per the policy) and every child is retried,
    down to ``max_depth``.
    """
    rec = get_recorder()
    started = time.perf_counter()
    with rec.span("cell", cell_id=cell_id, depth=depth, command=command):
        outcome = reach_from_box(system, box, command, settings.reach)
    elapsed = time.perf_counter() - started
    result = CellResult(
        cell_id=cell_id,
        box=box,
        command=command,
        verdict=outcome.verdict,
        depth=depth,
        elapsed_seconds=elapsed,
        steps_completed=outcome.steps_completed,
        joins_performed=outcome.joins_performed,
        integrations=outcome.integrations,
    )
    rec.inc(f"runner.verdict.{outcome.verdict.value}")
    if result.verdict is not Verdict.PROVED_SAFE and settings.witness_search:
        with rec.span("witness_search", cell_id=cell_id):
            witness = settings.witness_search(system, box, command)
        if witness is not None:
            # A concrete counterexample: the cell is genuinely unsafe,
            # so split refinement cannot rescue it — skip it (the
            # falsification coupling of Section 8).
            result.tags["witness"] = [float(v) for v in np.asarray(witness)]
            rec.inc("runner.witnesses")
            rec.event("runner.witness", cell_id=cell_id, depth=depth)
            return result
    policy = settings.refinement
    if (
        result.verdict is not Verdict.PROVED_SAFE
        and policy is not None
        and depth < policy.max_depth
    ):
        rec.inc("runner.refinements")
        with rec.span("refine", cell_id=cell_id, depth=depth + 1):
            for i, child_box in enumerate(policy.children(box)):
                result.children.append(
                    verify_cell(
                        system,
                        child_box,
                        command,
                        settings,
                        cell_id=f"{cell_id}.{i}",
                        depth=depth + 1,
                    )
                )
    return result


# ----------------------------------------------------------------------
# Parallel driver
# ----------------------------------------------------------------------
_WORKER_SYSTEM: ClosedLoopSystem | None = None
_WORKER_SETTINGS: RunnerSettings | None = None


def _init_worker(
    system_factory: Callable[[], ClosedLoopSystem],
    settings: RunnerSettings,
    parent_trace: str | None,
    observe: bool,
) -> None:
    global _WORKER_SYSTEM, _WORKER_SETTINGS
    # The forked child inherits the parent's recorder object (and its
    # open trace file descriptor, which must not be shared): install a
    # fresh per-worker recorder writing to its own JSONL file. The
    # parent merges the worker files and per-cell metric deltas back.
    if observe:
        trace = (
            worker_trace_path(Path(parent_trace)) if parent_trace is not None else None
        )
        set_recorder(Recorder(trace_path=trace))
        get_recorder().event("worker.start", pid=multiprocessing.current_process().pid)
    else:
        set_recorder(None)
    _WORKER_SYSTEM = system_factory()
    _WORKER_SETTINGS = settings


def _run_cell(task: tuple[str, Box, int, dict]) -> tuple[CellResult, dict | None]:
    cell_id, box, command, tags = task
    assert _WORKER_SYSTEM is not None and _WORKER_SETTINGS is not None
    result = verify_cell(_WORKER_SYSTEM, box, command, _WORKER_SETTINGS, cell_id)
    result.tags.update(tags)
    rec = get_recorder()
    if rec.enabled:
        rec.flush()
        # Ship the metrics gathered since the last cell back to the
        # parent; draining keeps deltas disjoint, so the parent can
        # simply fold every payload into its registry.
        return result, rec.metrics.drain()
    return result, None


def _notify_progress(progress, done: int, total: int, result: CellResult) -> None:
    """Feed either callback style: rich (``update(done, total, result)``,
    e.g. :class:`repro.obs.CampaignProgress`) or the legacy bare
    ``(done, total)`` callable."""
    if progress is None:
        return
    update = getattr(progress, "update", None)
    if update is not None:
        update(done, total, result)
    else:
        progress(done, total)


def verify_partition(
    system_factory: Callable[[], ClosedLoopSystem],
    cells: Sequence[tuple[Box, int]] | Sequence[tuple[Box, int, dict]],
    settings: RunnerSettings | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> VerificationReport:
    """Verify every initial cell of a partition.

    ``cells`` is a sequence of ``(box, command)`` or
    ``(box, command, tags)`` tuples. ``system_factory`` builds the
    closed-loop system — called once in serial mode, once per worker in
    parallel mode (fork start method, so closures are fine).

    ``progress`` is either a bare ``(done, total)`` callable or a rich
    observer with an ``update(done, total, result)`` method (see
    :class:`repro.obs.CampaignProgress` for rate/ETA/verdict counts).

    When a live :class:`repro.obs.Recorder` is installed, workers
    stream spans to per-worker JSONL files (merged into the parent's
    trace at the end) and ship per-cell metric deltas back; the merged
    snapshot lands in ``report.metrics``.
    """
    settings = settings or RunnerSettings()
    run_started = time.perf_counter()
    tasks = []
    for i, cell in enumerate(cells):
        box, command = cell[0], cell[1]
        tags = dict(cell[2]) if len(cell) > 2 else {}
        tasks.append((f"cell-{i}", box, command, tags))

    rec = get_recorder()
    results: list[CellResult]
    if settings.workers == 1:
        system = system_factory()
        results = []
        for i, (cell_id, box, command, tags) in enumerate(tasks):
            result = verify_cell(system, box, command, settings, cell_id)
            result.tags.update(tags)
            results.append(result)
            _notify_progress(progress, i + 1, len(tasks), result)
    else:
        parent_trace = str(rec.trace_path) if getattr(rec, "trace_path", None) else None
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(
            processes=settings.workers,
            initializer=_init_worker,
            initargs=(system_factory, settings, parent_trace, rec.enabled),
        ) as pool:
            results = []
            for i, (result, metrics_delta) in enumerate(pool.imap(_run_cell, tasks)):
                if metrics_delta and rec.enabled:
                    rec.metrics.merge_snapshot(metrics_delta)
                results.append(result)
                _notify_progress(progress, i + 1, len(tasks), result)
        if rec.enabled and parent_trace is not None:
            # Fold the per-worker trace files into the parent trace,
            # globally ordered by timestamp.
            rec.flush()
            parent_path = Path(parent_trace)
            worker_files = sorted(
                parent_path.parent.glob(f"{parent_path.stem}.worker-*.jsonl")
            )
            merged = merge_traces(parent_path, worker_files, delete_sources=True)
            rec.event("trace.merged", workers=len(worker_files), events=merged)
            rec.flush()

    report = VerificationReport(cells=results)
    report.wall_seconds = time.perf_counter() - run_started
    report.settings_summary = {
        "substeps": settings.reach.substeps,
        "max_symbolic_states": settings.reach.max_symbolic_states,
        "refinement_depth": settings.refinement.max_depth if settings.refinement else 0,
        "workers": settings.workers,
    }
    if rec.enabled:
        report.metrics = rec.metrics.snapshot()
    return report
