"""The paper's contribution: symbolic states, the closed-loop system
model, the reachability procedure (Algorithms 1-3), partitioning with
split refinement, the parallel runner, and runtime monitoring."""

from .checkpoint import load_journal, verify_partition_checkpointed
from .compose import StateView, SynchronousProductController
from .monitor import MonitorAdvice, RuntimeMonitor, SwitchingController
from .partition import RefinementPolicy, grid_partition
from .reach import (
    ReachResult,
    ReachSettings,
    TubeSegment,
    Verdict,
    reach,
    reach_from_box,
    reach_many,
)
from .result import CellResult, VerificationReport
from .runner import RunnerSettings, verify_cell, verify_partition
from .supervisor import (
    BudgetExceeded,
    ShutdownFlag,
    SupervisorOutcome,
    budget_guard,
    run_cell_guarded,
    run_supervised,
    trap_shutdown_signals,
)
from .symbolic import SymbolicSet, SymbolicState, resize
from .system import (
    ArgmaxPost,
    ArgminPost,
    ClosedLoopSystem,
    CommandSet,
    Controller,
    FunctionPre,
    IdentityPre,
    Plant,
)

__all__ = [
    "ArgmaxPost",
    "ArgminPost",
    "BudgetExceeded",
    "CellResult",
    "ClosedLoopSystem",
    "CommandSet",
    "Controller",
    "FunctionPre",
    "IdentityPre",
    "MonitorAdvice",
    "Plant",
    "ReachResult",
    "ReachSettings",
    "RefinementPolicy",
    "RunnerSettings",
    "RuntimeMonitor",
    "ShutdownFlag",
    "StateView",
    "SupervisorOutcome",
    "SwitchingController",
    "SynchronousProductController",
    "SymbolicSet",
    "SymbolicState",
    "TubeSegment",
    "Verdict",
    "VerificationReport",
    "budget_guard",
    "grid_partition",
    "load_journal",
    "reach",
    "reach_from_box",
    "reach_many",
    "resize",
    "run_cell_guarded",
    "run_supervised",
    "trap_shutdown_signals",
    "verify_cell",
    "verify_partition",
    "verify_partition_checkpointed",
]
