"""The paper's contribution: symbolic states, the closed-loop system
model, the reachability procedure (Algorithms 1-3), partitioning with
split refinement, the parallel runner, and runtime monitoring."""

from .checkpoint import (
    canonical_journal_bytes,
    load_journal,
    load_lease_records,
    verify_partition_checkpointed,
)
from .compose import StateView, SynchronousProductController
from .coordinator import (
    Coordinator,
    CoordinatorStats,
    DistributedSettings,
    run_distributed,
)
from .lease import Lease, LeaseTable, Shard, assign_shards, shard_index
from .monitor import MonitorAdvice, RuntimeMonitor, SwitchingController
from .node import NodeOutcome, NodeSettings, run_node
from .partition import RefinementPolicy, grid_partition
from .reach import (
    ReachResult,
    ReachSettings,
    TubeSegment,
    Verdict,
    reach,
    reach_from_box,
    reach_many,
)
from .result import CellResult, VerificationReport
from .runner import RunnerSettings, verify_cell, verify_partition
from .supervisor import (
    BudgetExceeded,
    ShutdownFlag,
    SupervisorOutcome,
    budget_guard,
    run_cell_guarded,
    run_supervised,
    trap_shutdown_signals,
)
from .symbolic import SymbolicSet, SymbolicState, resize
from .system import (
    ArgmaxPost,
    ArgminPost,
    ClosedLoopSystem,
    CommandSet,
    Controller,
    FunctionPre,
    IdentityPre,
    Plant,
)

__all__ = [
    "ArgmaxPost",
    "ArgminPost",
    "BudgetExceeded",
    "CellResult",
    "ClosedLoopSystem",
    "CommandSet",
    "Controller",
    "Coordinator",
    "CoordinatorStats",
    "DistributedSettings",
    "FunctionPre",
    "IdentityPre",
    "Lease",
    "LeaseTable",
    "MonitorAdvice",
    "NodeOutcome",
    "NodeSettings",
    "Plant",
    "ReachResult",
    "ReachSettings",
    "RefinementPolicy",
    "RunnerSettings",
    "RuntimeMonitor",
    "Shard",
    "ShutdownFlag",
    "StateView",
    "SupervisorOutcome",
    "SwitchingController",
    "SynchronousProductController",
    "SymbolicSet",
    "SymbolicState",
    "TubeSegment",
    "Verdict",
    "VerificationReport",
    "assign_shards",
    "budget_guard",
    "canonical_journal_bytes",
    "grid_partition",
    "load_journal",
    "load_lease_records",
    "reach",
    "reach_from_box",
    "reach_many",
    "resize",
    "run_cell_guarded",
    "run_distributed",
    "run_node",
    "run_supervised",
    "shard_index",
    "trap_shutdown_signals",
    "verify_cell",
    "verify_partition",
    "verify_partition_checkpointed",
]
