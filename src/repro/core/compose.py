"""Composition of several controllers over one plant (Section 8).

The paper sketches the multi-agent extension: "the plant could capture
the dynamics of the multiple agents ... and be combined with several
controllers", all executing in the same control interval. This module
provides the generic construction: a
:class:`SynchronousProductController` runs ``N`` sub-controllers, each
on its own *view* of the shared plant state, and exposes the product
command set — concrete and abstract semantics alike — in the controller
interface the reachability core consumes.

:mod:`repro.acasxu.multi_uav` is the hand-specialized two-aircraft
instance; this is the N-ary general form.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

import numpy as np

from ..intervals import Box
from .system import CommandSet

#: Maps the shared plant state to one controller's view of it.
ConcreteView = Callable[[np.ndarray], np.ndarray]
#: Sound box version of the same view.
AbstractView = Callable[[Box], Box]


class StateView:
    """A (concrete, abstract) view pair; identity by default."""

    def __init__(
        self,
        concrete: ConcreteView | None = None,
        abstract: AbstractView | None = None,
    ):
        self._concrete = concrete or (lambda s: np.asarray(s, dtype=float))
        self._abstract = abstract or (lambda box: box)

    def concrete(self, state: np.ndarray) -> np.ndarray:
        return self._concrete(state)

    def abstract(self, box: Box) -> Box:
        return self._abstract(box)


class SynchronousProductController:
    """N controllers sharing the plant, joint command set ``U_1 x ... x U_N``.

    ``controllers`` must implement the controller interface
    (``execute``, ``execute_abstract``, ``commands``); ``views`` give
    each its perspective on the shared state. Joint commands are
    indexed in mixed radix with the *last* controller fastest (matching
    ``itertools.product`` order).

    Remark 3 consequence: the joint command count is the product of the
    members', so ``Gamma`` must be at least that product.
    """

    def __init__(
        self,
        controllers: Sequence,
        views: Sequence[StateView] | None = None,
        command_names: Sequence[str] | None = None,
    ):
        if not controllers:
            raise ValueError("need at least one controller")
        self.controllers = list(controllers)
        if views is None:
            views = [StateView() for _ in controllers]
        if len(views) != len(controllers):
            raise ValueError("one view per controller required")
        self.views = list(views)
        self._sizes = [len(c.commands) for c in self.controllers]

        values = []
        names = []
        for combo in itertools.product(*(range(n) for n in self._sizes)):
            parts = [
                self.controllers[i].commands.value(local)
                for i, local in enumerate(combo)
            ]
            values.append(np.concatenate(parts))
            names.append(
                "/".join(
                    self.controllers[i].commands.name(local)
                    for i, local in enumerate(combo)
                )
            )
        if command_names is not None:
            if len(command_names) != len(names):
                raise ValueError("one name per joint command required")
            names = list(command_names)
        self.commands = CommandSet(np.array(values), names=names)

    # ------------------------------------------------------------------
    # Joint-index arithmetic (mixed radix, last controller fastest)
    # ------------------------------------------------------------------
    def split_index(self, joint: int) -> list[int]:
        locals_reversed = []
        for size in reversed(self._sizes):
            locals_reversed.append(joint % size)
            joint //= size
        return list(reversed(locals_reversed))

    def join_index(self, locals_: Sequence[int]) -> int:
        joint = 0
        for size, local in zip(self._sizes, locals_):
            if not 0 <= local < size:
                raise ValueError(f"local command {local} out of range {size}")
            joint = joint * size + local
        return joint

    # ------------------------------------------------------------------
    # Controller interface
    # ------------------------------------------------------------------
    def execute(self, state: np.ndarray, previous_command: int) -> int:
        previous_locals = self.split_index(previous_command)
        next_locals = [
            controller.execute(view.concrete(np.asarray(state, dtype=float)), prev)
            for controller, view, prev in zip(
                self.controllers, self.views, previous_locals
            )
        ]
        return self.join_index(next_locals)

    def execute_abstract(self, box: Box, previous_command: int) -> list[int]:
        previous_locals = self.split_index(previous_command)
        member_sets = [
            controller.execute_abstract(view.abstract(box), prev)
            for controller, view, prev in zip(
                self.controllers, self.views, previous_locals
            )
        ]
        return [
            self.join_index(combo) for combo in itertools.product(*member_sets)
        ]
