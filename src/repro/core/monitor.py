"""Runtime monitoring on top of an offline verification map.

Section 7.2 suggests the practical use of a partial safety proof:
"design a real-time monitoring mechanism that switches to a more robust
controller if the system encounters an initial state for which it was
not proved safe". :class:`RuntimeMonitor` looks up the offline
:class:`~repro.core.result.VerificationReport`;
:class:`SwitchingController` wires the lookup to a fallback controller.
"""

from __future__ import annotations

import enum
from typing import Callable

import numpy as np

from .result import VerificationReport
from .system import Controller


class MonitorAdvice(enum.Enum):
    """What the offline proof says about an encountered initial state."""

    #: The state lies in a cell proved safe: keep the primary controller.
    VERIFIED = "verified"
    #: The state lies in a cell that could not be proved: fall back.
    UNPROVED = "unproved"
    #: The state is outside the verified map entirely: fall back.
    UNCOVERED = "uncovered"


class RuntimeMonitor:
    """Looks up concrete initial states in the offline verification map.

    ``state_mapper`` optionally transforms the runtime plant state into
    the coordinates the partition was expressed in (identity default).
    """

    def __init__(
        self,
        report: VerificationReport,
        state_mapper: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        self.report = report
        self.state_mapper = state_mapper or (lambda s: s)

    def advise(self, state: np.ndarray, command: int) -> MonitorAdvice:
        mapped = np.asarray(self.state_mapper(np.asarray(state, dtype=float)))
        leaf = self.report.lookup(mapped, command)
        if leaf is None:
            return MonitorAdvice.UNCOVERED
        if leaf.proved:
            return MonitorAdvice.VERIFIED
        return MonitorAdvice.UNPROVED


class SwitchingController:
    """Primary controller guarded by the monitor, with a fallback.

    The switch decision is made once, on the first control step (the
    offline map covers *initial* states); afterwards the selected
    controller runs the episode. ``fallback`` may be any object with the
    controller's ``execute(state, previous_command)`` interface — e.g.
    the lookup-table controller the networks were distilled from.
    """

    def __init__(
        self,
        primary: Controller,
        fallback,
        monitor: RuntimeMonitor,
    ):
        self.primary = primary
        self.fallback = fallback
        self.monitor = monitor
        self._active = None
        self.last_advice: MonitorAdvice | None = None

    def reset(self) -> None:
        """Forget the episode's switch decision."""
        self._active = None
        self.last_advice = None

    def execute(self, state: np.ndarray, previous_command: int) -> int:
        if self._active is None:
            self.last_advice = self.monitor.advise(state, previous_command)
            self._active = (
                self.primary
                if self.last_advice is MonitorAdvice.VERIFIED
                else self.fallback
            )
        return self._active.execute(state, previous_command)

    @property
    def using_fallback(self) -> bool:
        return self._active is not None and self._active is self.fallback

    @property
    def commands(self):
        """The command set (delegated to the primary controller), so a
        switching controller can stand in for a plain one inside a
        :class:`~repro.core.system.ClosedLoopSystem`."""
        return self.primary.commands
