"""Checkpointed partition verification for long campaigns.

The paper's full experiment ran for ~12 days; any run at that scale
needs to survive interruption. :func:`verify_partition_checkpointed`
wraps :func:`~repro.core.runner.verify_partition` with an append-only
JSON-lines journal: each finished cell is written immediately, and a
restart skips every cell already journaled (validated against the cell
geometry, so a changed partition invalidates stale entries).
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..intervals import Box
from ..obs import get_recorder
from .result import CellResult, VerificationReport
from .runner import RunnerSettings, verify_cell

logger = logging.getLogger("repro.core.checkpoint")


def _cell_key(box: Box, command: int) -> str:
    payload = {
        "lo": [round(float(v), 12) for v in box.lo],
        "hi": [round(float(v), 12) for v in box.hi],
        "command": command,
    }
    return json.dumps(payload, sort_keys=True)


def load_journal(path: str | Path) -> dict[str, CellResult]:
    """Read finished cells from a journal (missing file = empty).

    Malformed lines — a torn final write from an interrupted run, a
    partially-synced page after a crash — are *skipped with a warning*
    rather than aborting the resume: one bad line must not cost a
    campaign its journal. Skips are logged and emitted as
    ``journal.malformed_line`` events on the current recorder.
    """
    path = Path(path)
    rec = get_recorder()
    finished: dict[str, CellResult] = {}
    if not path.exists():
        return finished
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                result = CellResult.from_dict(entry["result"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                logger.warning(
                    "%s:%d: skipping malformed journal line (%s)", path, lineno, exc
                )
                rec.event(
                    "journal.malformed_line",
                    path=str(path),
                    line=lineno,
                    error=type(exc).__name__,
                )
                continue
            finished[key] = result
    return finished


def verify_partition_checkpointed(
    system_factory: Callable[[], object],
    cells: Sequence[tuple],
    journal_path: str | Path,
    settings: RunnerSettings | None = None,
    progress: Callable[[int, int], None] | None = None,
    fsync: bool = False,
) -> VerificationReport:
    """Like :func:`~repro.core.runner.verify_partition`, resumable.

    Cells found in the journal are reused verbatim; the rest are
    verified (serially — the journal is the source of truth, and cell
    results are appended as soon as they finish) and journaled. The
    returned report always covers every requested cell, in order.

    With ``fsync=True`` every appended entry is fsync'd to stable
    storage before the next cell starts — slower, but a power loss can
    then cost at most the in-flight cell.
    """
    settings = settings or RunnerSettings()
    rec = get_recorder()
    run_started = time.perf_counter()
    journal_path = Path(journal_path)
    journal_path.parent.mkdir(parents=True, exist_ok=True)
    finished = load_journal(journal_path)
    if finished:
        rec.event(
            "journal.resume", path=str(journal_path), finished_cells=len(finished)
        )

    system = None
    skipped = 0
    results: list[CellResult] = []
    with open(journal_path, "a") as journal:
        for i, cell in enumerate(cells):
            box, command = cell[0], cell[1]
            tags = dict(cell[2]) if len(cell) > 2 else {}
            key = _cell_key(box, command)
            cached = finished.get(key)
            if cached is not None:
                cached.tags.update(tags)
                results.append(cached)
                skipped += 1
                rec.inc("checkpoint.cells_skipped")
            else:
                if system is None:
                    system = system_factory()
                result = verify_cell(system, box, command, settings, f"cell-{i}")
                result.tags.update(tags)
                journal.write(
                    json.dumps({"key": key, "result": result.to_dict()}) + "\n"
                )
                journal.flush()
                if fsync:
                    os.fsync(journal.fileno())
                results.append(result)
                rec.inc("checkpoint.cells_verified")
            if progress is not None:
                if hasattr(progress, "update"):
                    progress.update(i + 1, len(cells), results[-1])
                else:
                    progress(i + 1, len(cells))
    if skipped:
        logger.info(
            "resumed from %s: %d/%d cells skipped", journal_path, skipped, len(cells)
        )

    report = VerificationReport(cells=results)
    report.wall_seconds = time.perf_counter() - run_started
    report.settings_summary = {
        "substeps": settings.reach.substeps,
        "max_symbolic_states": settings.reach.max_symbolic_states,
        "refinement_depth": settings.refinement.max_depth if settings.refinement else 0,
        "journal": str(journal_path),
    }
    return report
