"""Checkpointed partition verification for long campaigns.

The paper's full experiment ran for ~12 days; any run at that scale
needs to survive interruption. :func:`verify_partition_checkpointed`
wraps the partition drivers with an append-only JSON-lines journal:
each finished cell is written immediately, and a restart skips every
cell already journaled (validated against the cell geometry, so a
changed partition invalidates stale entries).

The execution layer is the same fault-tolerant machinery as
:func:`~repro.core.runner.verify_partition`: with ``workers > 1`` the
uncached cells run on the supervised pool
(:func:`~repro.core.supervisor.run_supervised`), so worker crashes,
per-cell budgets, the campaign deadline and SIGINT/SIGTERM draining
all compose with resumability. Quarantined cells (``ABORTED`` /
``TIMED_OUT``) are deliberately *not* journaled: a restarted campaign
retries them instead of trusting a verdict that only says "something
went wrong last time".
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Callable, Sequence

from ..intervals import Box
from ..obs import get_recorder
from ..obs.live import HeartbeatReporter, get_bus
from ..testing.faults import get_fault_injector
from .result import CellResult, VerificationReport
from .runner import RunnerSettings, _notify_progress, _settings_summary
from .supervisor import (
    merge_worker_traces,
    run_cell_guarded,
    run_supervised,
    trap_shutdown_signals,
)

logger = logging.getLogger("repro.core.checkpoint")


def _cell_key(box: Box, command: int) -> str:
    payload = {
        "lo": [round(float(v), 12) for v in box.lo],
        "hi": [round(float(v), 12) for v in box.hi],
        "command": command,
    }
    return json.dumps(payload, sort_keys=True)


def load_journal(path: str | Path) -> dict[str, CellResult]:
    """Read finished cells from a journal (missing file = empty).

    Malformed lines — a torn final write from an interrupted run, a
    partially-synced page after a crash — are *skipped with a warning*
    rather than aborting the resume: one bad line must not cost a
    campaign its journal. Skips are logged and emitted as
    ``journal.malformed_line`` events on the current recorder.
    """
    path = Path(path)
    rec = get_recorder()
    finished: dict[str, CellResult] = {}
    if not path.exists():
        return finished
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                if isinstance(entry, dict) and "lease" in entry and "key" not in entry:
                    # Coordinator lease-state record (see core.coordinator):
                    # not a cell, and deliberately ignored here so journals
                    # from distributed runs resume fine under old readers.
                    continue
                key = entry["key"]
                result = CellResult.from_dict(entry["result"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                logger.warning(
                    "%s:%d: skipping malformed journal line (%s)", path, lineno, exc
                )
                rec.event(
                    "journal.malformed_line",
                    path=str(path),
                    line=lineno,
                    error=type(exc).__name__,
                )
                continue
            finished[key] = result
    return finished


class _JournalWriter:
    """Appends finished cells to the journal as they arrive.

    Quarantined results are skipped (see module docs). The torn-write
    fault (``torn-journal`` in :mod:`repro.testing.faults`) truncates an
    append mid-line with no trailing newline, mimicking a power loss;
    the next append then starts on a fresh line, as a restarted
    process's first append would.
    """

    def __init__(self, handle, fsync: bool):
        self.handle = handle
        self.fsync = fsync
        self._torn_pending = False

    def append(
        self, key: str, result: CellResult, extra: dict | None = None
    ) -> None:
        rec = get_recorder()
        if result.quarantined:
            # Not a verdict worth remembering: the next run retries it.
            rec.inc("checkpoint.cells_quarantined")
            rec.event(
                "checkpoint.cell_quarantined",
                cell_id=result.cell_id,
                verdict=result.verdict.value,
            )
            return
        entry = {"key": key, "result": result.to_dict()}
        if extra:
            # Provenance fields (shard/epoch from distributed runs). Old
            # readers only look at "key"/"result" and skip the rest.
            entry.update(extra)
        line = json.dumps(entry)
        injector = get_fault_injector()
        torn = False
        if injector is not None:
            line, torn = injector.tear_journal_line(line)
        if self._torn_pending:
            self.handle.write("\n")
            self._torn_pending = False
        self.handle.write(line if torn else line + "\n")
        self._torn_pending = torn
        self.handle.flush()
        if self.fsync:
            os.fsync(self.handle.fileno())
        rec.inc("checkpoint.cells_verified")

    def append_record(self, record: dict) -> None:
        """Append a non-cell bookkeeping record (e.g. a coordinator
        lease grant). Never torn by fault injection — lease records are
        coordinator-side state, not the cell write path under test."""
        if self._torn_pending:
            self.handle.write("\n")
            self._torn_pending = False
        self.handle.write(json.dumps(record) + "\n")
        self.handle.flush()
        if self.fsync:
            os.fsync(self.handle.fileno())


def load_lease_records(path: str | Path) -> list[dict]:
    """Read coordinator lease-state records from a journal, in append
    order (missing file = empty). Malformed lines are skipped, same
    policy as :func:`load_journal`; cell entries are ignored."""
    path = Path(path)
    records: list[dict] = []
    if not path.exists():
        return records
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "lease" in entry and "key" not in entry:
                lease = entry["lease"]
                if isinstance(lease, dict):
                    records.append(lease)
    return records


def _normalize_result_dict(payload: dict) -> dict:
    """Zero the wall-clock fields of a serialized CellResult so two
    runs of the same mathematics compare equal. Verdicts, depths, step
    counts, joins and integrations are deterministic; elapsed seconds
    and crash-retry attempt counts are not."""
    payload = dict(payload)
    payload["elapsed_seconds"] = 0.0
    payload["attempts"] = 0
    if payload.get("children"):
        payload["children"] = [
            _normalize_result_dict(child) for child in payload["children"]
        ]
    return payload


def canonical_journal_bytes(path: str | Path) -> bytes:
    """A journal's *mathematical content* as canonical bytes.

    Entries are sorted by cell key and re-serialized with sorted keys
    after zeroing volatile fields (elapsed wall-clock, retry attempts),
    so two journals covering the same partition with the same verdicts
    produce identical bytes — regardless of completion order, worker
    count, or whether the campaign ran single-host or distributed.
    This is the equivalence the distributed acceptance drill asserts.
    """
    finished = load_journal(path)
    lines = [
        json.dumps(
            {"key": key, "result": _normalize_result_dict(finished[key].to_dict())},
            sort_keys=True,
        )
        for key in sorted(finished)
    ]
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


def verify_partition_checkpointed(
    system_factory: Callable[[], object],
    cells: Sequence[tuple],
    journal_path: str | Path,
    settings: RunnerSettings | None = None,
    progress: Callable[[int, int], None] | None = None,
    fsync: bool = False,
) -> VerificationReport:
    """Like :func:`~repro.core.runner.verify_partition`, resumable.

    Cells found in the journal are reused verbatim; the rest are
    verified — serially or on the supervised pool, per
    ``settings.workers`` — and journaled as soon as they finish.
    Quarantined cells are excluded from the journal so a restart
    retries them. After an interruption (deadline or SIGINT/SIGTERM)
    the report covers only the finished cells and
    ``settings_summary["interrupted"]`` names the reason; otherwise the
    report covers every requested cell, in partition order.

    With ``fsync=True`` every appended entry is fsync'd to stable
    storage before the next cell starts — slower, but a power loss can
    then cost at most the in-flight cell.
    """
    settings = settings or RunnerSettings()
    rec = get_recorder()
    run_started = time.perf_counter()
    journal_path = Path(journal_path)
    journal_path.parent.mkdir(parents=True, exist_ok=True)
    finished = load_journal(journal_path)
    if finished:
        rec.event(
            "journal.resume", path=str(journal_path), finished_cells=len(finished)
        )

    keys: list[str] = []
    parsed: list[tuple[Box, int, dict]] = []
    for cell in cells:
        box, command = cell[0], cell[1]
        tags = dict(cell[2]) if len(cell) > 2 else {}
        parsed.append((box, command, tags))
        keys.append(_cell_key(box, command))

    total = len(parsed)
    done = 0
    skipped = 0
    interrupted: str | None = None
    results: dict[int, CellResult] = {}
    bus = get_bus()
    bus.publish(
        "campaign.started", total=total, workers=settings.workers, pid=os.getpid()
    )

    def notify(result: CellResult) -> None:
        nonlocal done
        done += 1
        _notify_progress(progress, done, total, result)

    remaining: list[int] = []
    for i, (box, command, tags) in enumerate(parsed):
        cached = finished.get(keys[i])
        if cached is not None:
            cached.tags.update(tags)
            results[i] = cached
            skipped += 1
            rec.inc("checkpoint.cells_skipped")
            # Journal-cached cells never touch a worker; worker=None and
            # cached=True let snapshot consumers count them separately.
            bus.publish(
                "cell.finished",
                worker=None,
                cell_id=f"cell-{i}",
                seq=i,
                verdict=cached.verdict.value,
                verdict_class=cached.verdict_class(),
                elapsed=0.0,
                cached=True,
            )
            notify(cached)
        else:
            remaining.append(i)

    with open(journal_path, "a") as handle:
        journal = _JournalWriter(handle, fsync)
        if remaining and settings.workers == 1:
            system = system_factory()
            reporter = None
            if bus.enabled:
                bus.publish("worker.ready", worker=0, pid=os.getpid())
                reporter = HeartbeatReporter(
                    lambda p: bus.publish("worker.heartbeat", worker=0, **p),
                    bus.heartbeat_interval or 1.0,
                ).start()
            try:
                with trap_shutdown_signals() as stop:
                    deadline_at = (
                        time.monotonic() + settings.deadline
                        if settings.deadline
                        else None
                    )
                    for n, i in enumerate(remaining):
                        if stop.requested:
                            interrupted = stop.reason
                        elif (
                            deadline_at is not None
                            and time.monotonic() >= deadline_at
                        ):
                            interrupted = "deadline"
                        if interrupted:
                            rec.event(
                                "campaign.interrupted",
                                reason=interrupted,
                                dropped_cells=len(remaining) - n,
                            )
                            bus.publish(
                                "campaign.interrupted",
                                reason=interrupted,
                                dropped_cells=len(remaining) - n,
                            )
                            logger.warning(
                                "campaign interrupted (%s): %d cells not run",
                                interrupted, len(remaining) - n,
                            )
                            break
                        box, command, tags = parsed[i]
                        bus.publish(
                            "cell.dispatched",
                            worker=0,
                            cell_id=f"cell-{i}",
                            seq=i,
                            attempt=0,
                        )
                        if reporter is not None:
                            reporter.begin_cell(f"cell-{i}")
                        result = run_cell_guarded(
                            system, box, command, settings, f"cell-{i}"
                        )
                        result.tags.update(tags)
                        if reporter is not None:
                            reporter.end_cell()
                        bus.publish(
                            "cell.finished",
                            worker=0,
                            cell_id=f"cell-{i}",
                            seq=i,
                            verdict=result.verdict.value,
                            verdict_class=result.verdict_class(),
                            elapsed=result.elapsed_seconds,
                        )
                        journal.append(keys[i], result)
                        results[i] = result
                        notify(result)
            finally:
                if reporter is not None:
                    reporter.stop()
        elif remaining:
            sub_tasks = [
                (f"cell-{i}", parsed[i][0], parsed[i][1], parsed[i][2])
                for i in remaining
            ]

            def on_result(seq: int, result: CellResult) -> None:
                i = remaining[seq]
                journal.append(keys[i], result)
                results[i] = result
                notify(result)

            outcome = run_supervised(
                system_factory, sub_tasks, settings, on_result=on_result
            )
            interrupted = outcome.interrupted
            merge_worker_traces(rec)

    if skipped:
        logger.info(
            "resumed from %s: %d/%d cells skipped", journal_path, skipped, total
        )

    report = VerificationReport(cells=[results[i] for i in sorted(results)])
    report.wall_seconds = time.perf_counter() - run_started
    report.settings_summary = _settings_summary(settings, interrupted)
    report.settings_summary["journal"] = str(journal_path)
    if rec.enabled:
        report.metrics = rec.metrics.snapshot()
    bus.publish(
        "campaign.finished",
        interrupted=interrupted,
        verdicts=report.verdict_counts(),
        coverage=report.coverage_percent(),
        wall_seconds=report.wall_seconds,
    )
    return report
