"""Checkpointed partition verification for long campaigns.

The paper's full experiment ran for ~12 days; any run at that scale
needs to survive interruption. :func:`verify_partition_checkpointed`
wraps :func:`~repro.core.runner.verify_partition` with an append-only
JSON-lines journal: each finished cell is written immediately, and a
restart skips every cell already journaled (validated against the cell
geometry, so a changed partition invalidates stale entries).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..intervals import Box
from .result import CellResult, VerificationReport
from .runner import RunnerSettings, verify_cell


def _cell_key(box: Box, command: int) -> str:
    payload = {
        "lo": [round(float(v), 12) for v in box.lo],
        "hi": [round(float(v), 12) for v in box.hi],
        "command": command,
    }
    return json.dumps(payload, sort_keys=True)


def load_journal(path: str | Path) -> dict[str, CellResult]:
    """Read finished cells from a journal (missing file = empty)."""
    path = Path(path)
    finished: dict[str, CellResult] = {}
    if not path.exists():
        return finished
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line from an interrupted run is expected;
                # everything before it is intact.
                break
            finished[entry["key"]] = CellResult.from_dict(entry["result"])
    return finished


def verify_partition_checkpointed(
    system_factory: Callable[[], object],
    cells: Sequence[tuple],
    journal_path: str | Path,
    settings: RunnerSettings | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> VerificationReport:
    """Like :func:`~repro.core.runner.verify_partition`, resumable.

    Cells found in the journal are reused verbatim; the rest are
    verified (serially — the journal is the source of truth, and cell
    results are appended as soon as they finish) and journaled. The
    returned report always covers every requested cell, in order.
    """
    settings = settings or RunnerSettings()
    journal_path = Path(journal_path)
    journal_path.parent.mkdir(parents=True, exist_ok=True)
    finished = load_journal(journal_path)

    system = None
    results: list[CellResult] = []
    with open(journal_path, "a") as journal:
        for i, cell in enumerate(cells):
            box, command = cell[0], cell[1]
            tags = dict(cell[2]) if len(cell) > 2 else {}
            key = _cell_key(box, command)
            cached = finished.get(key)
            if cached is not None:
                cached.tags.update(tags)
                results.append(cached)
            else:
                if system is None:
                    system = system_factory()
                result = verify_cell(system, box, command, settings, f"cell-{i}")
                result.tags.update(tags)
                journal.write(
                    json.dumps({"key": key, "result": result.to_dict()}) + "\n"
                )
                journal.flush()
                results.append(result)
            if progress is not None:
                progress(i + 1, len(cells))

    report = VerificationReport(cells=results)
    report.settings_summary = {
        "substeps": settings.reach.substeps,
        "max_symbolic_states": settings.reach.max_symbolic_states,
        "refinement_depth": settings.refinement.max_depth if settings.refinement else 0,
        "journal": str(journal_path),
    }
    return report
