"""Node agent for distributed sharded campaigns.

One node agent runs on each machine (or, for the localhost topology,
in each forked process) of a distributed campaign. It is deliberately
thin: all verification machinery is the existing supervised fork pool
(:func:`~repro.core.supervisor.run_supervised`) — worker crash
retry/quarantine, per-cell budgets and deadline draining compose
unchanged underneath — and all scheduling intelligence lives in the
coordinator (:mod:`repro.core.coordinator`). The agent's whole job is:

1. connect and say ``hello`` (node id, worker count);
2. for each ``grant`` frame, verify the shard's cells on the local
   pool, streaming one ``result`` frame per finished cell;
3. keep a heartbeat thread talking so the coordinator can tell
   "slow" from "dead" (the payload reuses the
   :class:`~repro.obs.live.HeartbeatReporter` shape that single-host
   live telemetry already emits for workers);
4. say ``shard_done`` and wait for the next grant or ``shutdown``.

Every frame the agent sends carries the ``(shard, epoch)`` it is
working under. The agent never decides whether its work is still
wanted — the coordinator's lease table does, by fencing frames from
stale epochs. That asymmetry is what makes the zombie scenario safe: a
netsplit agent keeps computing and later flushes everything it
buffered, and the flush is *correct behavior* — the coordinator
discards it deterministically.

Node-level fault injection (``node-crash`` / ``node-netsplit`` /
``node-slowjoin`` in :mod:`repro.testing.faults`) hooks in here, at
the same seams a real failure would hit: process death mid-shard,
frames silently not arriving, late enrollment.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..intervals import Box
from ..obs.live import HeartbeatReporter
from ..testing.faults import CRASH_EXIT_CODE, get_fault_injector
from .result import CellResult
from .wire import FrameError, parse_hostport, recv_frame, send_frame

logger = logging.getLogger("repro.core.node")


@dataclass(frozen=True)
class NodeSettings:
    """How one node agent connects and computes."""

    #: ``HOST:PORT`` of the coordinator.
    connect: str
    #: Stable node name; shown in `repro watch`, recorded in journal
    #: provenance. Defaults to ``node-<pid>``.
    node_id: str | None = None
    #: Size of the local supervised pool.
    workers: int = 1
    #: Heartbeat period in seconds. Must be well under the
    #: coordinator's lease timeout or healthy nodes get expired.
    heartbeat_interval: float = 0.5
    #: How long to keep retrying the initial TCP connect (the
    #: coordinator may still be binding when nodes launch).
    dial_timeout: float = 10.0

    def resolved_node_id(self) -> str:
        return self.node_id or f"node-{os.getpid()}"


@dataclass
class NodeOutcome:
    """What one agent did before the coordinator said shutdown."""

    node_id: str = ""
    cells_computed: int = 0
    shards_completed: int = 0
    #: Fence frames the coordinator sent us (stale-epoch work of ours
    #: it discarded). Nonzero after surviving a netsplit.
    fenced: int = 0
    #: The coordinator's campaign config from the welcome frame.
    config: dict = field(default_factory=dict)


class _Sender:
    """Socket writer with a netsplit valve.

    All frames leave through :meth:`send` under one lock (the main
    loop and the heartbeat thread both write). ``mute_for`` opens a
    blackout window emulating a one-way partition: the TCP connection
    stays up, heartbeats are *dropped* (a split heartbeat never
    arrives) and data frames are *buffered* (the agent's computation
    does not stop). The first send after the window closes flushes the
    buffer — the zombie's late flood, which the coordinator must fence.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._lock = threading.Lock()
        self._mute_until = 0.0
        self._buffer: list[dict] = []

    def mute_for(self, seconds: float) -> None:
        with self._lock:
            self._mute_until = time.monotonic() + seconds

    def send(self, payload: dict) -> None:
        with self._lock:
            if time.monotonic() < self._mute_until:
                if payload.get("type") != "heartbeat":
                    self._buffer.append(payload)
                return
            while self._buffer:
                send_frame(self._sock, self._buffer.pop(0))
            send_frame(self._sock, payload)


def _connect(settings: NodeSettings) -> socket.socket:
    host, port = parse_hostport(settings.connect)
    deadline = time.monotonic() + settings.dial_timeout
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=settings.dial_timeout)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(0.5, delay * 2)


def _grant_tasks(cells: list[dict]) -> list[tuple]:
    """Grant payload -> supervised-pool tasks. Cell ids are the global
    ``cell-<index>`` names, so results (and their refinement subtrees)
    are indistinguishable from a single-host run's."""
    return [
        (
            f"cell-{cell['index']}",
            Box(cell["lo"], cell["hi"]),
            int(cell["command"]),
            dict(cell.get("tags") or {}),
        )
        for cell in cells
    ]


def run_node(
    settings: NodeSettings,
    system_factory: Callable[[], object] | None = None,
    factory_from_config: Callable[[dict], Callable[[], object]] | None = None,
    runner_settings=None,
) -> NodeOutcome:
    """Run one node agent until the coordinator says ``shutdown``.

    The closed-loop system comes either from ``system_factory``
    (programmatic use — the localhost ``run_distributed`` helper forks
    agents that close over the caller's factory) or from
    ``factory_from_config``, called with the coordinator's welcome
    config (the CLI path, where a bare ``repro node`` must build the
    same scenario the coordinator is verifying). ``runner_settings``,
    when given, overrides the welcome-config-derived pool settings —
    the localhost helper passes the campaign's exact
    :class:`~repro.core.runner.RunnerSettings` through the fork, so
    settings parity with single-host is by construction, not by
    serialization fidelity.
    """
    if (system_factory is None) == (factory_from_config is None):
        raise ValueError("pass exactly one of system_factory / factory_from_config")
    from .runner import RunnerSettings  # local import: runner imports obs at load

    injector = get_fault_injector()
    if injector is not None:
        delay = injector.node_slowjoin_seconds()
        if delay > 0:
            logger.info("slowjoin fault: sleeping %.2fs before connecting", delay)
            time.sleep(delay)

    node_id = settings.resolved_node_id()
    outcome = NodeOutcome(node_id=node_id)
    sock = _connect(settings)
    # Blocking reads from here on: idle waits between grants are
    # unbounded (the coordinator says shutdown when the campaign ends;
    # a dead coordinator surfaces as EOF/ECONNRESET, not a timeout).
    sock.settimeout(None)
    sender = _Sender(sock)
    sender.send(
        {"type": "hello", "node": node_id, "workers": settings.workers,
         "pid": os.getpid()}
    )
    welcome = recv_frame(sock)
    if welcome.get("type") != "welcome":
        raise FrameError(f"expected welcome, got {welcome.get('type')!r}")
    outcome.config = dict(welcome.get("config") or {})
    if system_factory is None:
        assert factory_from_config is not None
        system_factory = factory_from_config(outcome.config)

    # The local pool reuses the campaign's reach/refinement settings but
    # its own worker count; campaign-wide budgets (deadline) stay with
    # the coordinator, which stops granting when they expire.
    if runner_settings is not None:
        pool_settings = RunnerSettings(
            reach=runner_settings.reach,
            refinement=runner_settings.refinement,
            workers=settings.workers,
            cell_timeout=runner_settings.cell_timeout,
            max_retries=runner_settings.max_retries,
            retry_backoff=runner_settings.retry_backoff,
            witness_search=runner_settings.witness_search,
            witness_timeout=runner_settings.witness_timeout,
        )
    else:
        pool_settings = RunnerSettings(
            reach=_reach_from_config(outcome.config),
            refinement=_refinement_from_config(outcome.config),
            workers=settings.workers,
            cell_timeout=outcome.config.get("cell_timeout"),
            max_retries=int(outcome.config.get("max_retries", 1)),
        )

    # One heartbeat thread for the agent's lifetime; the shard/epoch it
    # stamps onto each beat tracks the current grant.
    current: dict = {"shard": None, "epoch": 0}
    reporter = HeartbeatReporter(
        lambda payload: sender.send(
            {
                "type": "heartbeat",
                "node": node_id,
                "shard": current["shard"],
                "epoch": current["epoch"],
                "payload": payload,
            }
        ),
        settings.heartbeat_interval,
    ).start()

    try:
        while True:
            try:
                frame = recv_frame(sock)
            except (EOFError, OSError):
                logger.info("%s: coordinator connection closed", node_id)
                break
            kind = frame.get("type")
            if kind == "shutdown":
                break
            if kind == "fence":
                outcome.fenced += 1
                logger.info(
                    "%s: fenced on %s epoch %s (our work there was stale)",
                    node_id, frame.get("shard"), frame.get("epoch"),
                )
                continue
            if kind != "grant":
                logger.warning("%s: ignoring unknown frame %r", node_id, kind)
                continue

            shard_id = frame["shard"]
            epoch = int(frame["epoch"])
            cells = frame["cells"]
            keys = [cell["key"] for cell in cells]
            current["shard"], current["epoch"] = shard_id, epoch

            crash_after: int | None = None
            if injector is not None:
                split = injector.node_netsplit_seconds(shard_id, epoch)
                if split is not None:
                    logger.info(
                        "%s: netsplit fault on %s: muting frames for %.1fs",
                        node_id, shard_id, split,
                    )
                    sender.mute_for(split)
                if injector.node_crash_active(shard_id, epoch):
                    crash_after = max(1, len(cells) // 2)

            tasks = _grant_tasks(cells)
            streamed = 0

            def on_result(seq: int, result: CellResult) -> None:
                nonlocal streamed
                reporter.end_cell()
                sender.send(
                    {
                        "type": "result",
                        "node": node_id,
                        "shard": shard_id,
                        "epoch": epoch,
                        "index": int(cells[seq]["index"]),
                        "key": keys[seq],
                        "result": result.to_dict(),
                    }
                )
                streamed += 1
                outcome.cells_computed += 1
                if crash_after is not None and streamed >= crash_after:
                    # A real node death: no goodbye, no flush, no
                    # cleanup. The coordinator finds out from the EOF
                    # (or the missed heartbeats) and steals the rest
                    # of the shard.
                    os._exit(CRASH_EXIT_CODE)

            from .supervisor import run_supervised

            logger.info(
                "%s: granted %s epoch %d (%d cells)",
                node_id, shard_id, epoch, len(tasks),
            )
            run_supervised(system_factory, tasks, pool_settings, on_result=on_result)
            sender.send(
                {"type": "shard_done", "node": node_id, "shard": shard_id,
                 "epoch": epoch, "cells": streamed}
            )
            outcome.shards_completed += 1
            current["shard"], current["epoch"] = None, 0
    finally:
        reporter.stop()
        sock.close()
    return outcome


def _reach_from_config(config: dict):
    from .reach import ReachSettings

    return ReachSettings(
        substeps=int(config.get("substeps", 10)),
        max_symbolic_states=int(config.get("gamma", 5)),
        batch_states=bool(config.get("batch_states", False)),
    )


def _refinement_from_config(config: dict):
    from .partition import RefinementPolicy

    depth = int(config.get("depth", 0))
    if depth <= 0:
        return None
    dims = tuple(config.get("refinement_dims") or (0, 1, 2))
    return RefinementPolicy(dims=dims, max_depth=depth)
