"""Campaign coordinator for distributed sharded verification.

The paper's headline experiment — ~198k cells over ~12 days — runs at
a scale where node loss is routine. This module is the control plane
that makes such a campaign a fleet workload: one coordinator process
owns the partition, shards it deterministically
(:func:`~repro.core.lease.assign_shards` over the checkpoint layer's
geometry keys), and hands shards to node agents
(:mod:`repro.core.node`) over length-prefixed JSON frames
(:mod:`repro.core.wire`), tracking each grant as a *lease*
(:class:`~repro.core.lease.LeaseTable`).

Recovery, not scheduling, is the design center:

* **Node loss.** Missed heartbeats or a dropped connection expire the
  lease; after an exponential cooling-off window the shard is
  *work-stolen* by any idle node — at cell granularity: the steal
  grant excludes every cell the dead node already streamed back, so a
  crash costs at most the in-flight cells, never recomputation of
  journaled ones.
* **Zombie nodes.** Every grant carries a fresh, strictly increasing
  *epoch*. A node that went silent (netsplit) and later floods its
  buffered results back is answered frame-by-frame with a ``fence``:
  its epoch is dead, nothing it sends is accepted, and the discard is
  deterministic — no "maybe the old result lands first" races.
* **Coordinator loss.** Grants and accepted results flow through the
  same append-only journal as single-host checkpointed runs
  (:mod:`repro.core.checkpoint`; cell entries gain ``shard``/``epoch``
  provenance fields old readers skip, lease grants are their own
  records old readers also skip). A restarted coordinator replays the
  journal: finished cells stay finished, and every shard's epoch floor
  is restored so pre-crash zombies stay fenced.

Determinism is the acceptance bar: the same partition verified
distributed and single-host yields the same verdicts, the same
refinement trees, the same coverage — the merged journal is
byte-identical under :func:`~repro.core.checkpoint.canonical_journal_bytes`
(which normalizes only wall-clock fields). Cells are re-assembled in
partition order, and node ids never leak into the mathematics.
"""

from __future__ import annotations

import logging
import os
import selectors
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..intervals import Box
from ..obs import get_recorder
from ..obs.live import get_bus
from .checkpoint import (
    _cell_key,
    _JournalWriter,
    load_journal,
    load_lease_records,
)
from .lease import LeaseTable, assign_shards
from .result import CellResult, VerificationReport
from .runner import RunnerSettings, _notify_progress, _settings_summary
from .supervisor import trap_shutdown_signals
from .wire import FrameDecoder, FrameError, parse_hostport, send_frame

logger = logging.getLogger("repro.core.coordinator")

#: recv size per readable socket per loop turn.
_RECV_CHUNK = 1 << 16


@dataclass(frozen=True)
class DistributedSettings:
    """Topology and lease policy for one distributed campaign."""

    #: ``HOST:PORT`` to listen on (port 0 = ephemeral, reported by
    #: :meth:`Coordinator.start`).
    listen: str = "127.0.0.1:0"
    #: Shard count (None = ``max(8, 4 * expected_nodes)``, capped at
    #: the cell count). More shards than nodes keeps the work-stealing
    #: granularity useful: an idle node always has something to claim.
    num_shards: int | None = None
    #: Hold all grants until this many nodes have said hello
    #: (0 = grant as nodes arrive).
    expected_nodes: int = 0
    #: Seconds of node silence before its lease expires.
    lease_timeout: float = 10.0
    #: Base of the exponential cooling-off window an expired shard
    #: sits out before it may be regranted.
    reassign_backoff: float = 0.5
    max_backoff: float = 30.0
    #: Event-loop poll period (lease sweeps, grant attempts).
    poll_interval: float = 0.1
    #: Per-socket send/recv timeout; a peer wedged longer than this on
    #: the TCP level is treated as disconnected.
    socket_timeout: float = 10.0
    #: fsync journal appends (same meaning as the checkpoint layer's).
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.num_shards is not None and self.num_shards < 1:
            raise ValueError("num_shards must be >= 1 (or None)")
        if self.expected_nodes < 0:
            raise ValueError("expected_nodes must be >= 0")


@dataclass
class CoordinatorStats:
    """Observable invariants of one coordinated campaign — what the
    acceptance drill asserts on."""

    grants: int = 0
    expired_leases: int = 0
    #: Frames (results / heartbeats / completions) refused because
    #: their epoch was stale. Nonzero whenever a zombie came back.
    fenced_frames: int = 0
    #: Results accepted for a key that was already journaled. Must stay
    #: 0: grants exclude finished cells and stale epochs are fenced, so
    #: a double-count would mean the lease discipline is broken.
    duplicate_results: int = 0
    #: Cells handed out again after a lease expiry (the stolen work).
    stolen_cells: int = 0
    #: Already-journaled cells *excluded* from steal grants — the
    #: recomputation that did not happen.
    steal_excluded: int = 0
    nodes_seen: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "grants": self.grants,
            "expired_leases": self.expired_leases,
            "fenced_frames": self.fenced_frames,
            "duplicate_results": self.duplicate_results,
            "stolen_cells": self.stolen_cells,
            "steal_excluded": self.steal_excluded,
            "nodes_seen": list(self.nodes_seen),
        }


class _Conn:
    """Per-connection read state."""

    def __init__(self, sock: socket.socket, addr):
        self.sock = sock
        self.addr = addr
        self.decoder = FrameDecoder()
        self.node_id: str | None = None
        #: True while the agent is (as far as we know) computing a
        #: grant — ours or a stale one. Lease expiry does NOT clear
        #: this: an expired node is usually still chewing on the shard,
        #: and granting it more work would just queue dead epochs in
        #: its socket. Cleared by its shard_done (accepted or fenced)
        #: or by a heartbeat reporting it idle.
        self.busy = False


class Coordinator:
    """One distributed campaign: shard, lease, merge.

    Single-threaded by construction — every socket, the lease table and
    the journal are touched only from :meth:`serve`'s ``selectors``
    loop, so there is no lock anywhere in the control plane.
    """

    def __init__(
        self,
        cells: Sequence[tuple],
        journal_path: str | Path,
        settings: RunnerSettings | None = None,
        dist: DistributedSettings | None = None,
        progress: Callable[[int, int], None] | None = None,
        welcome_config: dict | None = None,
    ):
        self.settings = settings or RunnerSettings()
        self.dist = dist or DistributedSettings()
        self.progress = progress
        self.journal_path = Path(journal_path)
        self.stats = CoordinatorStats()

        self.parsed: list[tuple[Box, int, dict]] = []
        self.keys: list[str] = []
        for cell in cells:
            box, command = cell[0], cell[1]
            tags = dict(cell[2]) if len(cell) > 2 else {}
            self.parsed.append((box, command, tags))
            self.keys.append(_cell_key(box, command))
        self.index_of = {key: i for i, key in enumerate(self.keys)}

        num_shards = self.dist.num_shards or max(
            8, 4 * max(1, self.dist.expected_nodes)
        )
        num_shards = min(num_shards, max(1, len(self.keys)))
        self.shards = assign_shards(self.keys, num_shards)
        self.table = LeaseTable(
            self.shards,
            lease_timeout=self.dist.lease_timeout,
            reassign_backoff=self.dist.reassign_backoff,
            max_backoff=self.dist.max_backoff,
        )
        #: What remote ``repro node`` agents rebuild their pool from.
        self.welcome_config = dict(welcome_config or {})
        self.welcome_config.setdefault("substeps", self.settings.reach.substeps)
        self.welcome_config.setdefault("gamma", self.settings.reach.max_symbolic_states)
        self.welcome_config.setdefault(
            "batch_states", self.settings.reach.batch_states
        )
        self.welcome_config.setdefault(
            "depth",
            self.settings.refinement.max_depth if self.settings.refinement else 0,
        )
        if self.settings.refinement is not None:
            self.welcome_config.setdefault(
                "refinement_dims", list(self.settings.refinement.dims)
            )
        self.welcome_config.setdefault("cell_timeout", self.settings.cell_timeout)
        self.welcome_config.setdefault("max_retries", self.settings.max_retries)

        #: index -> accepted result (journal-cached and streamed alike).
        self.results: dict[int, CellResult] = {}
        #: keys with an accepted result this campaign (steal exclusion
        #: set; includes quarantined results, which are never journaled
        #: but are also never retried within one campaign — matching
        #: the single-host drivers).
        self.done_keys: set[str] = set()
        #: keys durably in the journal.
        self.journaled: set[str] = set()

        self._listener: socket.socket | None = None
        self._sel: selectors.BaseSelector | None = None
        self._conns: dict[socket.socket, _Conn] = {}
        #: node id -> live connection (latest hello wins).
        self._nodes: dict[str, _Conn] = {}
        self._shard_expiry_pending: bool = False
        self.interrupted: str | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        assert self._listener is not None, "call start() first"
        return self._listener.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind the listener (does not block). Returns (host, port) —
        with an ephemeral port spec, this is where nodes must dial."""
        host, port = parse_hostport(self.dist.listen)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        listener.setblocking(False)
        self._listener = listener
        self._sel = selectors.DefaultSelector()
        self._sel.register(listener, selectors.EVENT_READ, "listener")
        logger.info("coordinator listening on %s:%d", *self.address)
        return self.address

    # -- journal replay ------------------------------------------------
    def _replay_journal(self, rec, bus) -> None:
        finished = load_journal(self.journal_path)
        for key, result in finished.items():
            index = self.index_of.get(key)
            if index is None:
                # A journal shared with a different partition; the
                # checkpoint layer has the same stance — ignore.
                continue
            result.tags.update(self.parsed[index][2])
            self.results[index] = result
            self.done_keys.add(key)
            self.journaled.add(key)
            bus.publish(
                "cell.finished",
                worker=None,
                cell_id=f"cell-{index}",
                seq=index,
                verdict=result.verdict.value,
                verdict_class=result.verdict_class(),
                elapsed=0.0,
                cached=True,
            )
        if finished:
            rec.event(
                "journal.resume",
                path=str(self.journal_path),
                finished_cells=len(self.journaled),
            )
        # Epoch floors: every pre-crash grant is replayed so a new
        # grant's epoch is strictly above anything a zombie may hold.
        for record in load_lease_records(self.journal_path):
            shard_id = record.get("shard")
            epoch = record.get("epoch")
            if shard_id in self.table and isinstance(epoch, int):
                self.table.restore_epoch(shard_id, epoch)
        for shard in self.shards:
            if all(self.keys[i] in self.done_keys for i in shard.indices):
                self.table.force_complete(shard.shard_id)

    # -- the loop ------------------------------------------------------
    def serve(self) -> VerificationReport:
        """Run the campaign to completion (or deadline/signal) and
        return the merged report. :meth:`start` must have been called;
        node agents may connect before or after serve() begins."""
        assert self._sel is not None, "call start() first"
        rec = get_recorder()
        bus = get_bus()
        run_started = time.perf_counter()
        bus.publish(
            "campaign.started",
            total=len(self.parsed),
            workers=0,
            pid=os.getpid(),
            distributed=True,
            shards=len(self.shards),
        )
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        self._replay_journal(rec, bus)
        deadline_at = (
            time.monotonic() + self.settings.deadline
            if self.settings.deadline
            else None
        )
        with open(self.journal_path, "a") as handle:
            journal = _JournalWriter(handle, self.dist.fsync)
            with trap_shutdown_signals() as stop:
                while self.table.outstanding() > 0:
                    if stop.requested:
                        self.interrupted = stop.reason
                    elif deadline_at is not None and time.monotonic() >= deadline_at:
                        self.interrupted = "deadline"
                    if self.interrupted:
                        rec.event(
                            "campaign.interrupted",
                            reason=self.interrupted,
                            outstanding_shards=self.table.outstanding(),
                        )
                        bus.publish(
                            "campaign.interrupted",
                            reason=self.interrupted,
                            outstanding_shards=self.table.outstanding(),
                        )
                        break
                    events = self._sel.select(timeout=self.dist.poll_interval)
                    for key, _mask in events:
                        if key.data == "listener":
                            self._accept()
                        else:
                            self._read(key.data, journal, bus)
                    now = time.monotonic()
                    for lease in self.table.expire_due(now):
                        self.stats.expired_leases += 1
                        logger.warning(
                            "lease expired: %s epoch %d held by %s "
                            "(no heartbeat for %.1fs)",
                            lease.shard_id, lease.epoch, lease.node_id,
                            self.dist.lease_timeout,
                        )
                        bus.publish(
                            "lease.expired",
                            node=lease.node_id,
                            shard=lease.shard_id,
                            epoch=lease.epoch,
                            reason="lease-timeout",
                        )
                    self._grant_idle(journal, bus, now)
            self._shutdown_nodes(bus)
        return self._build_report(rec, bus, run_started)

    # -- connection handling -------------------------------------------
    def _accept(self) -> None:
        assert self._listener is not None and self._sel is not None
        try:
            sock, addr = self._listener.accept()
        except OSError:
            return
        sock.settimeout(self.dist.socket_timeout)
        conn = _Conn(sock, addr)
        self._conns[sock] = conn
        self._sel.register(sock, selectors.EVENT_READ, conn)

    def _disconnect(self, conn: _Conn, bus, reason: str) -> None:
        assert self._sel is not None
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        self._conns.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn.node_id is not None and self._nodes.get(conn.node_id) is conn:
            del self._nodes[conn.node_id]
            bus.publish("node.disconnected", node=conn.node_id, reason=reason)
            now = time.monotonic()
            for lease in self.table.expire_node(conn.node_id, now, reason):
                self.stats.expired_leases += 1
                logger.warning(
                    "lease expired: %s epoch %d — %s %s",
                    lease.shard_id, lease.epoch, conn.node_id, reason,
                )
                bus.publish(
                    "lease.expired",
                    node=conn.node_id,
                    shard=lease.shard_id,
                    epoch=lease.epoch,
                    reason=reason,
                )

    def _read(self, conn: _Conn, journal: _JournalWriter, bus) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except (OSError, socket.timeout):
            self._disconnect(conn, bus, "recv-error")
            return
        if not data:
            self._disconnect(conn, bus, "disconnect")
            return
        try:
            frames = conn.decoder.feed(data)
        except FrameError as exc:
            logger.warning("%s: protocol error: %s", conn.addr, exc)
            self._disconnect(conn, bus, "protocol-error")
            return
        for frame in frames:
            self._dispatch(conn, frame, journal, bus)

    def _send(self, conn: _Conn, payload: dict, bus) -> None:
        try:
            send_frame(conn.sock, payload)
        except (OSError, FrameError):
            self._disconnect(conn, bus, "send-error")

    # -- frame handlers ------------------------------------------------
    def _fence(self, conn: _Conn, frame: dict, bus) -> None:
        self.stats.fenced_frames += 1
        bus.publish(
            "node.fenced",
            node=frame.get("node"),
            shard=frame.get("shard"),
            epoch=frame.get("epoch"),
            frame=frame.get("type"),
        )
        self._send(
            conn,
            {"type": "fence", "shard": frame.get("shard"),
             "epoch": frame.get("epoch")},
            bus,
        )

    def _dispatch(
        self, conn: _Conn, frame: dict, journal: _JournalWriter, bus
    ) -> None:
        kind = frame.get("type")
        if kind == "hello":
            node_id = str(frame.get("node"))
            conn.node_id = node_id
            stale = self._nodes.get(node_id)
            if stale is not None and stale is not conn:
                # Same node id reconnecting (restarted agent): the old
                # socket is a zombie's. Latest hello wins; the old
                # connection's frames keep being fenced until it dies.
                logger.info("%s reconnected; superseding old connection", node_id)
            self._nodes[node_id] = conn
            conn.busy = False
            if node_id not in self.stats.nodes_seen:
                self.stats.nodes_seen.append(node_id)
            bus.publish(
                "node.connected",
                node=node_id,
                workers=frame.get("workers"),
                pid=frame.get("pid"),
            )
            self._send(
                conn, {"type": "welcome", "config": self.welcome_config}, bus
            )
            return
        if conn.node_id is None:
            logger.warning("%s: frame before hello; dropping", conn.addr)
            return
        node_id = str(frame.get("node") or conn.node_id)
        shard_id = frame.get("shard")
        epoch = int(frame.get("epoch") or 0)

        if kind == "heartbeat":
            payload = frame.get("payload") or {}
            # The beat is ground truth for busyness, fenced or not: a
            # node beating with a shard is computing (possibly a stale
            # epoch); one beating with none is ready for work again.
            conn.busy = shard_id is not None
            if shard_id is not None and not self.table.renew(
                shard_id, node_id, epoch, time.monotonic()
            ):
                self._fence(conn, frame, bus)
                return
            bus.publish(
                "node.heartbeat",
                node=node_id,
                shard=shard_id,
                epoch=epoch,
                **{
                    k: payload.get(k)
                    for k in (
                        "pid", "rss_bytes", "cells_completed",
                        "cell_id", "cell_elapsed",
                    )
                },
            )
            return
        if kind == "result":
            if shard_id is None or not self.table.is_current(
                shard_id, node_id, epoch
            ):
                self._fence(conn, frame, bus)
                return
            self.table.renew(shard_id, node_id, epoch, time.monotonic())
            key = frame.get("key")
            index = self.index_of.get(key)
            if index is None:
                logger.warning("%s: result for unknown cell key; dropping", node_id)
                return
            if key in self.done_keys:
                # Should be unreachable while the lease discipline
                # holds; counted so the acceptance drill can prove it.
                self.stats.duplicate_results += 1
                logger.error("duplicate result for %s from %s", key, node_id)
                return
            result = CellResult.from_dict(frame["result"])
            self.results[index] = result
            self.done_keys.add(key)
            journal.append(
                key, result,
                extra={"shard": shard_id, "epoch": epoch, "node": node_id},
            )
            if not result.quarantined:
                self.journaled.add(key)
            bus.publish(
                "cell.finished",
                worker=None,
                node=node_id,
                cell_id=f"cell-{index}",
                seq=index,
                verdict=result.verdict.value,
                verdict_class=result.verdict_class(),
                elapsed=result.elapsed_seconds,
            )
            _notify_progress(
                self.progress, len(self.done_keys), len(self.parsed), result
            )
            return
        if kind == "shard_done":
            conn.busy = False
            if shard_id is None or not self.table.complete(shard_id, node_id, epoch):
                self._fence(conn, frame, bus)
                return
            bus.publish(
                "lease.completed", node=node_id, shard=shard_id, epoch=epoch
            )
            logger.info("%s completed %s (epoch %d)", node_id, shard_id, epoch)
            return
        logger.warning("%s: unknown frame type %r", node_id, kind)

    # -- granting ------------------------------------------------------
    def _grant_idle(self, journal: _JournalWriter, bus, now: float) -> None:
        # Enrollment barrier, not a liveness requirement: hold the first
        # grants until the expected fleet has said hello (so the initial
        # spread is balanced and deterministic), but once enrolled, keep
        # granting to whoever is left — a crashed node must not stall
        # the campaign.
        if (
            self.dist.expected_nodes
            and len(self.stats.nodes_seen) < self.dist.expected_nodes
        ):
            return
        claimable = self.table.claimable(now)
        if not claimable:
            return
        idle = [
            node_id
            for node_id in sorted(self._nodes)
            if not self._nodes[node_id].busy
            and self.table.node_lease(node_id) is None
        ]
        for shard_id in claimable:
            if not idle:
                return
            shard = self.table.shard(shard_id)
            pending = [i for i in shard.indices if self.keys[i] not in self.done_keys]
            if not pending:
                # Everything streamed in before the previous holder's
                # lease died — nothing left to steal.
                self.table.force_complete(shard_id)
                bus.publish(
                    "lease.completed", node=None, shard=shard_id,
                    epoch=self.table.epoch(shard_id),
                )
                continue
            # Steal anti-affinity: a node that went silent holding this
            # shard may be dead without the socket ever EOFing (TCP
            # gives no signal for a vanished peer), so prefer any other
            # idle node; fall back to the last holder only when it is
            # the sole candidate (it may merely have been slow).
            failed = self.table.last_failed_node(shard_id)
            node_id = next((n for n in idle if n != failed), idle[0])
            idle.remove(node_id)
            conn = self._nodes[node_id]
            lease = self.table.grant(shard_id, node_id, now)
            self.stats.grants += 1
            stolen = lease.epoch > 1
            if stolen:
                self.stats.stolen_cells += len(pending)
                self.stats.steal_excluded += len(shard.indices) - len(pending)
            # Durable before visible: the lease record hits the journal
            # before the grant frame hits the wire, so a coordinator
            # restart can never readmit an epoch it forgot granting.
            journal.append_record(
                {
                    "lease": {
                        "shard": shard_id,
                        "epoch": lease.epoch,
                        "node": node_id,
                    }
                }
            )
            cells_payload = [
                {
                    "index": i,
                    "key": self.keys[i],
                    "lo": [float(v) for v in self.parsed[i][0].lo],
                    "hi": [float(v) for v in self.parsed[i][0].hi],
                    "command": self.parsed[i][1],
                    "tags": self.parsed[i][2],
                }
                for i in pending
            ]
            bus.publish(
                "lease.granted",
                node=node_id,
                shard=shard_id,
                epoch=lease.epoch,
                cells=len(pending),
                stolen=stolen,
            )
            logger.info(
                "granted %s epoch %d to %s (%d cells%s)",
                shard_id, lease.epoch, node_id, len(pending),
                f", {len(shard.indices) - len(pending)} already journaled"
                if stolen else "",
            )
            conn.busy = True
            self._send(
                conn,
                {
                    "type": "grant",
                    "shard": shard_id,
                    "epoch": lease.epoch,
                    "cells": cells_payload,
                },
                bus,
            )

    # -- teardown ------------------------------------------------------
    def _shutdown_nodes(self, bus) -> None:
        for conn in list(self._conns.values()):
            self._send(conn, {"type": "shutdown"}, bus)
        for conn in list(self._conns.values()):
            self._disconnect(conn, bus, "shutdown")
        if self._listener is not None:
            try:
                if self._sel is not None:
                    self._sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        if self._sel is not None:
            self._sel.close()
            self._sel = None

    def _build_report(self, rec, bus, run_started: float) -> VerificationReport:
        report = VerificationReport(
            cells=[self.results[i] for i in sorted(self.results)]
        )
        report.wall_seconds = time.perf_counter() - run_started
        report.settings_summary = _settings_summary(self.settings, self.interrupted)
        report.settings_summary["journal"] = str(self.journal_path)
        report.settings_summary["distributed"] = {
            "shards": len(self.shards),
            "lease_timeout": self.dist.lease_timeout,
            **self.stats.to_dict(),
        }
        if rec.enabled:
            report.metrics = rec.metrics.snapshot()
        bus.publish(
            "campaign.finished",
            interrupted=self.interrupted,
            verdicts=report.verdict_counts(),
            coverage=report.coverage_percent(),
            wall_seconds=report.wall_seconds,
        )
        return report


# ----------------------------------------------------------------------
# The localhost topology: `verify --distributed`
# ----------------------------------------------------------------------
def run_distributed(
    system_factory: Callable[[], object],
    cells: Sequence[tuple],
    journal_path: str | Path,
    settings: RunnerSettings | None = None,
    dist: DistributedSettings | None = None,
    nodes: int = 3,
    workers_per_node: int = 1,
    progress: Callable[[int, int], None] | None = None,
    node_env: dict[str, str] | None = None,
) -> VerificationReport:
    """Run a distributed campaign entirely on this machine: fork
    ``nodes`` node agents against a loopback coordinator and serve to
    completion. The degenerate single-host case of the topology — and
    the deterministic harness the fault drill runs against.

    ``node_env`` entries are set in each forked agent (the drill uses
    it to scope ``REPRO_FAULTS`` to the nodes). The agents inherit the
    caller's ``system_factory`` and ``settings`` through the fork, so
    they verify with exactly the campaign's configuration.
    """
    import multiprocessing

    from ..obs.live import set_bus
    from .node import NodeSettings, run_node

    settings = settings or RunnerSettings()
    dist = dist or DistributedSettings()
    coordinator = Coordinator(
        cells,
        journal_path,
        settings=settings,
        dist=dist,
        progress=progress,
    )
    host, port = coordinator.start()

    ctx = multiprocessing.get_context("fork")

    def agent_main(node_index: int) -> None:
        # The fork inherits the parent's live bus and recorder; the
        # agent must not write to either (the parent owns those file
        # handles and threads).
        set_bus(None)
        from ..obs import set_recorder

        set_recorder(None)
        for key, value in (node_env or {}).items():
            os.environ[key] = value
        node_settings = NodeSettings(
            connect=f"{host}:{port}",
            node_id=f"node-{node_index}",
            workers=workers_per_node,
        )
        try:
            run_node(
                node_settings,
                system_factory=system_factory,
                runner_settings=settings,
            )
        except (OSError, EOFError, FrameError) as exc:
            logger.warning("node-%d: %s", node_index, exc)

    # Not daemonic: each agent forks its own supervised worker pool,
    # and daemonic processes may not have children.
    procs = [
        ctx.Process(target=agent_main, args=(i,), name=f"repro-node-{i}")
        for i in range(nodes)
    ]
    for proc in procs:
        proc.start()
    try:
        report = coordinator.serve()
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
    report.settings_summary["distributed"]["nodes"] = nodes
    report.settings_summary["distributed"]["workers_per_node"] = workers_per_node
    return report
