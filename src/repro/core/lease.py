"""Deterministic sharding and lease-based shard ownership.

The distributed campaign layer splits one partition into *shards* —
stable groups of cells — and tracks each shard's ownership as a
*lease*: a grant to one node, under one monotonically increasing
*epoch*, with a deadline that node heartbeats keep pushing forward.
The coordinator (:mod:`repro.core.coordinator`) drives this table; the
table itself is pure bookkeeping (time is always passed in), so every
recovery rule — expiry, backoff, epoch fencing, work stealing — is
unit-testable without sockets or clocks.

**Sharding is content-derived.** A cell's shard comes from hashing its
:func:`~repro.core.checkpoint._cell_key` geometry key, so the same
partition always shards the same way — across coordinator restarts,
across host counts, regardless of the order cells were enumerated in.
Shard ids are therefore stable names (``shard-7``) that fault specs
(``node-crash:shard-7``) and logs can target deterministically.

**Leases, not assignments.** A node owns a shard only while its lease
is live. Missed heartbeats or a dropped connection *expire* the lease:
the shard enters a cooling-off window (exponential backoff — a node
that died under memory pressure tends to take its replacement down
too if the work bounces back instantly) and is then *claimable* by any
idle node. Each grant increments the shard's epoch; a result frame is
accepted only if it carries the currently leased epoch, which is what
makes a zombie node — one that kept computing through a netsplit and
reconnected — harmlessly late rather than silently corrupting: every
frame from its stale epoch is fenced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "Lease",
    "LeaseTable",
    "Shard",
    "assign_shards",
    "shard_index",
]


def shard_index(cell_key: str, num_shards: int) -> int:
    """The shard a cell belongs to: a stable hash of its geometry key.

    SHA-256 rather than ``hash()`` so the mapping is identical across
    processes, hosts and Python versions (``PYTHONHASHSEED`` varies;
    campaign shards must not).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    digest = hashlib.sha256(cell_key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass(frozen=True)
class Shard:
    """A stable group of cells, addressed by partition index."""

    shard_id: str
    #: Indices into the campaign's cell sequence, in partition order.
    indices: tuple[int, ...]


def assign_shards(keys: Sequence[str], num_shards: int) -> list[Shard]:
    """Split ``keys`` (one geometry key per cell, in partition order)
    into at most ``num_shards`` non-empty shards, deterministically.

    ``shard-<k>`` holds every cell whose key hashes to bucket ``k``;
    empty buckets are dropped. Duplicate keys are rejected — they would
    make per-cell bookkeeping (journal replay, steal grants) ambiguous.
    """
    seen: set[str] = set()
    for key in keys:
        if key in seen:
            raise ValueError(f"duplicate cell key: {key}")
        seen.add(key)
    buckets: dict[int, list[int]] = {}
    for i, key in enumerate(keys):
        buckets.setdefault(shard_index(key, num_shards), []).append(i)
    return [
        Shard(shard_id=f"shard-{k}", indices=tuple(buckets[k]))
        for k in sorted(buckets)
    ]


@dataclass
class Lease:
    """One live grant: ``shard_id`` is owned by ``node_id`` under
    ``epoch`` until ``deadline`` (monotonic seconds), unless renewed."""

    shard_id: str
    node_id: str
    epoch: int
    granted_at: float
    deadline: float


@dataclass
class _ShardState:
    shard: Shard
    #: Highest epoch ever granted (0 = never granted). Strictly
    #: monotonic, including across coordinator restarts (the journal
    #: replays grants so fencing stays sound after a crash).
    epoch: int = 0
    #: Times this shard's lease expired (drives the backoff exponent).
    expiries: int = 0
    #: Monotonic time before which the shard must not be regranted.
    available_at: float = 0.0
    lease: Lease | None = None
    complete: bool = False
    #: Why the last lease ended (telemetry only).
    last_expiry_reason: str | None = None
    #: Node whose lease on this shard last expired. Used for steal
    #: anti-affinity: a silently dead node never EOFs its socket, so
    #: without this the grant loop could hand the shard straight back
    #: to the corpse forever.
    last_failed_node: str | None = None


class LeaseTable:
    """Ownership bookkeeping for every shard of one campaign.

    All methods take ``now`` (monotonic seconds) explicitly. The table
    never talks to sockets or clocks; the coordinator is the only
    writer, from its single event-loop thread.
    """

    def __init__(
        self,
        shards: Iterable[Shard],
        lease_timeout: float = 10.0,
        reassign_backoff: float = 0.5,
        max_backoff: float = 30.0,
    ):
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if reassign_backoff < 0 or max_backoff < 0:
            raise ValueError("backoff values must be >= 0")
        self.lease_timeout = float(lease_timeout)
        self.reassign_backoff = float(reassign_backoff)
        self.max_backoff = float(max_backoff)
        self._shards: dict[str, _ShardState] = {}
        for shard in shards:
            if shard.shard_id in self._shards:
                raise ValueError(f"duplicate shard id: {shard.shard_id}")
            self._shards[shard.shard_id] = _ShardState(shard=shard)

    # -- introspection -------------------------------------------------
    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def shard(self, shard_id: str) -> Shard:
        return self._shards[shard_id].shard

    def shard_ids(self) -> list[str]:
        return list(self._shards)

    def lease_of(self, shard_id: str) -> Lease | None:
        return self._shards[shard_id].lease

    def node_lease(self, node_id: str) -> Lease | None:
        """The lease ``node_id`` currently holds, if any (one shard per
        node at a time — work stealing happens between shards)."""
        for state in self._shards.values():
            if state.lease is not None and state.lease.node_id == node_id:
                return state.lease
        return None

    def outstanding(self) -> int:
        """Shards not yet complete."""
        return sum(1 for s in self._shards.values() if not s.complete)

    def epoch(self, shard_id: str) -> int:
        return self._shards[shard_id].epoch

    def expiries(self, shard_id: str) -> int:
        return self._shards[shard_id].expiries

    def last_failed_node(self, shard_id: str) -> str | None:
        """The node whose lease on ``shard_id`` last expired — the one
        a steal grant should avoid when any other node is idle."""
        return self._shards[shard_id].last_failed_node

    # -- the epoch fence -----------------------------------------------
    def is_current(self, shard_id: str, node_id: str, epoch: int) -> bool:
        """True iff ``(node_id, epoch)`` is the live lease on
        ``shard_id`` — the acceptance test every result, heartbeat and
        completion frame must pass. Anything else (older epoch, a
        zombie's reconnect, a shard already completed or expired) is
        stale and must be fenced."""
        state = self._shards.get(shard_id)
        if state is None or state.lease is None:
            return False
        lease = state.lease
        return lease.node_id == node_id and lease.epoch == epoch

    # -- grants --------------------------------------------------------
    def claimable(self, now: float) -> list[str]:
        """Shards an idle node could be granted right now: never
        completed, not currently leased, past any backoff window.
        Ordered by shard id for determinism."""
        return [
            sid
            for sid, state in sorted(self._shards.items())
            if not state.complete
            and state.lease is None
            and now >= state.available_at
        ]

    def cooling(self, now: float) -> list[str]:
        """Unleased, incomplete shards still inside a backoff window —
        work that exists but must not be handed out yet."""
        return [
            sid
            for sid, state in sorted(self._shards.items())
            if not state.complete and state.lease is None and now < state.available_at
        ]

    def grant(self, shard_id: str, node_id: str, now: float) -> Lease:
        """Lease ``shard_id`` to ``node_id`` under a fresh epoch."""
        state = self._shards[shard_id]
        if state.complete:
            raise ValueError(f"{shard_id} is already complete")
        if state.lease is not None:
            raise ValueError(
                f"{shard_id} is leased to {state.lease.node_id} "
                f"(epoch {state.lease.epoch})"
            )
        if now < state.available_at:
            raise ValueError(f"{shard_id} is cooling down until {state.available_at}")
        state.epoch += 1
        state.lease = Lease(
            shard_id=shard_id,
            node_id=node_id,
            epoch=state.epoch,
            granted_at=now,
            deadline=now + self.lease_timeout,
        )
        return state.lease

    def renew(self, shard_id: str, node_id: str, epoch: int, now: float) -> bool:
        """Push the lease deadline forward (a heartbeat or result frame
        arrived). Returns False — renew *refused* — for stale frames."""
        if not self.is_current(shard_id, node_id, epoch):
            return False
        lease = self._shards[shard_id].lease
        assert lease is not None
        lease.deadline = now + self.lease_timeout
        return True

    # -- expiry and completion -----------------------------------------
    def _backoff(self, expiries: int) -> float:
        if self.reassign_backoff <= 0:
            return 0.0
        return min(self.max_backoff, self.reassign_backoff * (2 ** (expiries - 1)))

    def expire(self, shard_id: str, now: float, reason: str = "timeout") -> Lease | None:
        """Tear down the live lease (missed heartbeats, dropped
        connection, explicit release). The shard enters an
        exponentially growing cooling-off window before it becomes
        claimable again; the epoch it was leased under is dead forever.
        Returns the expired lease (None if there was none)."""
        state = self._shards[shard_id]
        lease = state.lease
        if lease is None:
            return None
        state.lease = None
        state.expiries += 1
        state.available_at = now + self._backoff(state.expiries)
        state.last_expiry_reason = reason
        state.last_failed_node = lease.node_id
        return lease

    def expire_due(self, now: float) -> list[Lease]:
        """Expire every lease whose deadline has passed (the
        coordinator's periodic liveness sweep)."""
        expired: list[Lease] = []
        for sid, state in sorted(self._shards.items()):
            if state.lease is not None and now >= state.lease.deadline:
                expired.append(self.expire(sid, now, reason="lease-timeout"))  # type: ignore[arg-type]
        return expired

    def expire_node(self, node_id: str, now: float, reason: str) -> list[Lease]:
        """Expire every lease held by ``node_id`` (its connection
        dropped or its agent said goodbye)."""
        expired: list[Lease] = []
        for sid, state in sorted(self._shards.items()):
            if state.lease is not None and state.lease.node_id == node_id:
                expired.append(self.expire(sid, now, reason=reason))  # type: ignore[arg-type]
        return expired

    def complete(self, shard_id: str, node_id: str, epoch: int) -> bool:
        """Mark the shard done iff the completion comes from its live
        lease; a stale completion is fenced like any other frame."""
        if not self.is_current(shard_id, node_id, epoch):
            return False
        state = self._shards[shard_id]
        state.lease = None
        state.complete = True
        return True

    def force_complete(self, shard_id: str) -> None:
        """Completion decided by the coordinator itself (every cell of
        the shard is journaled — e.g. after a resume), regardless of
        lease state."""
        state = self._shards[shard_id]
        state.lease = None
        state.complete = True

    def restore_epoch(self, shard_id: str, epoch: int) -> None:
        """Raise the shard's epoch floor (journal replay on coordinator
        restart): grants after a crash must keep epochs strictly
        increasing or fencing would readmit pre-crash zombies."""
        state = self._shards[shard_id]
        state.epoch = max(state.epoch, epoch)

    # -- summaries -----------------------------------------------------
    def to_dict(self, now: float) -> dict:
        """Telemetry view of the whole table."""
        shards = {}
        for sid, state in sorted(self._shards.items()):
            lease = state.lease
            shards[sid] = {
                "cells": len(state.shard.indices),
                "epoch": state.epoch,
                "expiries": state.expiries,
                "complete": state.complete,
                "node": lease.node_id if lease else None,
                "lease_age": round(now - lease.granted_at, 3) if lease else None,
                "cooling_for": (
                    round(state.available_at - now, 3)
                    if state.lease is None
                    and not state.complete
                    and now < state.available_at
                    else None
                ),
                "last_expiry_reason": state.last_expiry_reason,
            }
        return shards


# Backward-compatible re-export target for the shard field name used in
# journal lines; kept here so checkpoint.py does not import coordinator.
JOURNAL_SHARD_FIELD = "shard"
JOURNAL_EPOCH_FIELD = "epoch"
JOURNAL_LEASE_FIELD = "lease"
