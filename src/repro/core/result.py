"""Verification results, the coverage metric, and report serialization.

The coverage formula is the paper's (Section 7.2):

    c = 100 / K0 * sum_d n_d / B**d

where ``K0`` is the number of top-level cells, ``n_d`` the number of
cells proved safe after ``d`` refinements and ``B`` the refinement
branching factor (``2**3`` for the paper's x0/y0/psi0 bisection). The
recursive ``coverage_fraction`` below evaluates the same quantity cell
by cell, and also handles mixed branching factors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..intervals import Box
from .reach import Verdict


@dataclass
class CellResult:
    """Verification outcome for one initial cell (possibly refined)."""

    cell_id: str
    box: Box
    command: int
    verdict: Verdict
    depth: int = 0
    elapsed_seconds: float = 0.0
    steps_completed: int = 0
    joins_performed: int = 0
    integrations: int = 0
    #: How many times this cell was dispatched (0 = untracked/legacy;
    #: >1 means the supervised runner retried it after worker crashes).
    attempts: int = 0
    children: list["CellResult"] = field(default_factory=list)
    #: Free-form labels (e.g. the arc index of the ACAS partition).
    tags: dict = field(default_factory=dict)

    @property
    def proved(self) -> bool:
        return self.verdict is Verdict.PROVED_SAFE

    @property
    def quarantined(self) -> bool:
        """The verification never completed: the supervised runner
        substituted an ``ABORTED`` (crash/exception) or ``TIMED_OUT``
        (budget) verdict. ``tags["failure"]`` carries the reason."""
        return self.verdict in (Verdict.ABORTED, Verdict.TIMED_OUT)

    def verdict_class(self) -> str:
        """``proved | witnessed | aborted | timed-out | unproved`` —
        the rolling-count classification of this cell's whole
        refinement tree, shared by :class:`repro.obs.CampaignProgress`,
        the run ledger and the live telemetry snapshot: *proved* when
        the full volume is covered, *witnessed* when any leaf recorded
        a concrete counterexample, *aborted*/*timed-out* when the
        supervised runner quarantined a leaf, else *unproved*."""
        if self.coverage_fraction() >= 1.0:
            return "proved"
        leaves = self.leaves()
        if any("witness" in leaf.tags for leaf in leaves):
            return "witnessed"
        if any(leaf.verdict is Verdict.ABORTED for leaf in leaves):
            return "aborted"
        if any(leaf.verdict is Verdict.TIMED_OUT for leaf in leaves):
            return "timed-out"
        return "unproved"

    def coverage_fraction(self) -> float:
        """Fraction of this cell's volume proved safe, per the paper's
        weighting (each refinement level divides the weight by the
        branching factor)."""
        if self.proved:
            return 1.0
        if not self.children:
            return 0.0
        return sum(c.coverage_fraction() for c in self.children) / len(self.children)

    def total_elapsed(self) -> float:
        """This cell's time including every refinement descendant."""
        return self.elapsed_seconds + sum(c.total_elapsed() for c in self.children)

    def count_by_depth(self, counts: dict[int, int] | None = None) -> dict[int, int]:
        """``n_d``: proved cells per refinement depth (paper formula)."""
        counts = counts if counts is not None else {}
        if self.proved:
            counts[self.depth] = counts.get(self.depth, 0) + 1
        for child in self.children:
            child.count_by_depth(counts)
        return counts

    def leaves(self) -> list["CellResult"]:
        """Unrefined descendants (the final verdict map, Fig. 9a)."""
        if not self.children:
            return [self]
        out: list[CellResult] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def to_dict(self) -> dict:
        return {
            "cell_id": self.cell_id,
            "lo": self.box.lo.tolist(),
            "hi": self.box.hi.tolist(),
            "command": self.command,
            "verdict": self.verdict.value,
            "depth": self.depth,
            "elapsed_seconds": self.elapsed_seconds,
            "steps_completed": self.steps_completed,
            "joins_performed": self.joins_performed,
            "integrations": self.integrations,
            "attempts": self.attempts,
            "tags": self.tags,
            "children": [c.to_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(payload: dict) -> "CellResult":
        return CellResult(
            cell_id=payload["cell_id"],
            box=Box(payload["lo"], payload["hi"]),
            command=payload["command"],
            verdict=Verdict(payload["verdict"]),
            depth=payload["depth"],
            elapsed_seconds=payload["elapsed_seconds"],
            steps_completed=payload["steps_completed"],
            joins_performed=payload.get("joins_performed", 0),
            integrations=payload.get("integrations", 0),
            attempts=payload.get("attempts", 0),
            tags=payload.get("tags", {}),
            children=[CellResult.from_dict(c) for c in payload.get("children", [])],
        )


@dataclass
class VerificationReport:
    """Aggregated outcome over a whole initial-set partition."""

    cells: list[CellResult] = field(default_factory=list)
    system_name: str = ""
    settings_summary: dict = field(default_factory=dict)
    #: Merged metrics snapshot (:meth:`repro.obs.MetricsRegistry.snapshot`)
    #: covering the whole run, workers included. Empty when no recorder
    #: was installed.
    metrics: dict = field(default_factory=dict)
    #: End-to-end wall time of the producing run (set by
    #: :func:`repro.core.runner.verify_partition`); unlike
    #: :meth:`total_elapsed` it does not multiply-count parallel
    #: workers, so it is what the run ledger records.
    wall_seconds: float = 0.0

    @property
    def total_cells(self) -> int:
        return len(self.cells)

    def coverage_percent(self) -> float:
        """The paper's coverage metric ``c`` (Section 7.2)."""
        if not self.cells:
            return 0.0
        return 100.0 * sum(c.coverage_fraction() for c in self.cells) / len(self.cells)

    def verdict_counts(self) -> dict[str, int]:
        """Rolling verdict counts over top-level cells, classified by
        :meth:`CellResult.verdict_class` (the same semantics as
        :class:`repro.obs.CampaignProgress` and the live telemetry
        snapshot). Feeds the run ledger."""
        counts = {
            "proved": 0,
            "unproved": 0,
            "witnessed": 0,
            "aborted": 0,
            "timed-out": 0,
            "total": len(self.cells),
        }
        for cell in self.cells:
            counts[cell.verdict_class()] += 1
        return counts

    def quarantined_cells(self) -> list[CellResult]:
        """Cells whose verification never completed (``ABORTED`` /
        ``TIMED_OUT`` anywhere in their tree) — the rerun worklist
        after a faulty campaign."""
        return [
            cell
            for cell in self.cells
            if any(leaf.quarantined for leaf in cell.leaves())
        ]

    def proved_count_by_depth(self) -> dict[int, int]:
        """``n_d`` aggregated over all cells."""
        counts: dict[int, int] = {}
        for cell in self.cells:
            cell.count_by_depth(counts)
        return counts

    def total_elapsed(self) -> float:
        return sum(c.total_elapsed() for c in self.cells)

    def fully_proved_cells(self) -> list[CellResult]:
        return [c for c in self.cells if c.coverage_fraction() >= 1.0]

    def unproved_leaves(self) -> list[CellResult]:
        """Leaf regions still unproved (candidates for falsification)."""
        return [leaf for cell in self.cells for leaf in cell.leaves() if not leaf.proved]

    def lookup(self, point, command: int) -> CellResult | None:
        """The finest leaf whose box contains ``point`` with matching
        command (used by the runtime monitor)."""
        for cell in self.cells:
            if cell.command == command and cell.box.contains_point(point):
                node = cell
                while node.children:
                    child = next(
                        (c for c in node.children if c.box.contains_point(point)),
                        None,
                    )
                    if child is None:
                        break
                    node = child
                return node
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, path: str | Path) -> None:
        payload = {
            "system_name": self.system_name,
            "settings": self.settings_summary,
            "wall_seconds": self.wall_seconds,
            "cells": [c.to_dict() for c in self.cells],
        }
        if self.metrics:
            payload["metrics"] = self.metrics
        with open(path, "w") as out:
            json.dump(payload, out)

    @staticmethod
    def from_json(path: str | Path) -> "VerificationReport":
        with open(path) as handle:
            payload = json.load(handle)
        return VerificationReport(
            cells=[CellResult.from_dict(c) for c in payload["cells"]],
            system_name=payload.get("system_name", ""),
            settings_summary=payload.get("settings", {}),
            metrics=payload.get("metrics", {}),
            wall_seconds=payload.get("wall_seconds", 0.0),
        )

    def to_csv(self, path: str | Path) -> None:
        """Flat per-leaf CSV (one row per final verdict region)."""
        with open(path, "w") as out:
            out.write("cell_id,depth,command,verdict,elapsed_seconds,")
            out.write("lo,hi\n")
            for cell in self.cells:
                for leaf in cell.leaves():
                    lo = ";".join(f"{v:.9g}" for v in leaf.box.lo)
                    hi = ";".join(f"{v:.9g}" for v in leaf.box.hi)
                    out.write(
                        f"{leaf.cell_id},{leaf.depth},{leaf.command},"
                        f"{leaf.verdict.value},{leaf.elapsed_seconds:.6f},"
                        f"{lo},{hi}\n"
                    )

    def summary(self) -> str:
        counts = self.proved_count_by_depth()
        lines = [
            f"system: {self.system_name}",
            f"cells: {self.total_cells}",
            f"coverage: {self.coverage_percent():.2f}%",
            f"proved by depth: {dict(sorted(counts.items()))}",
            f"total time: {self.total_elapsed():.2f}s",
        ]
        return "\n".join(lines)
