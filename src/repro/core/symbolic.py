"""Symbolic states and symbolic sets (Definitions 7-10 of the paper).

A symbolic state ``([s], u)`` pairs an ``l``-box of plant states with a
*concrete* actuation command — exploiting that the command set ``U`` is
finite, which is what lets the procedure keep exact command information
while abstracting the continuous state. Commands are referenced by
index into the system's :class:`~repro.core.system.CommandSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..intervals import Box


@dataclass(frozen=True)
class SymbolicState:
    """Definition 7: a plant-state box plus a concrete command index."""

    box: Box
    command: int

    def distance_sq(self, other: "SymbolicState") -> float:
        """Definition 9: squared distance between box centers.

        Only defined between states with equal commands.
        """
        if self.command != other.command:
            raise ValueError(
                "distance is only defined between states with the same command"
            )
        return self.box.center_distance_sq(other.box)

    def join(self, other: "SymbolicState") -> "SymbolicState":
        """Definition 10: hull of the boxes, same command."""
        if self.command != other.command:
            raise ValueError("cannot join states with different commands")
        return SymbolicState(self.box.hull(other.box), self.command)

    def contains(self, state: np.ndarray, command: int) -> bool:
        """Concrete membership of ``(state, command)``."""
        return command == self.command and self.box.contains_point(state)

    def __repr__(self) -> str:
        return f"SymbolicState(u#{self.command}, {self.box!r})"


@dataclass
class SymbolicSet:
    """Definition 8: a finite collection of symbolic states."""

    states: list[SymbolicState] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[SymbolicState]:
        return iter(self.states)

    def __getitem__(self, index: int) -> SymbolicState:
        return self.states[index]

    def add(self, state: SymbolicState) -> None:
        self.states.append(state)

    def extend(self, states: Iterable[SymbolicState]) -> None:
        self.states.extend(states)

    def commands(self) -> set[int]:
        """The distinct command indices present."""
        return {s.command for s in self.states}

    def group_by_command(self) -> dict[int, list[int]]:
        """Indices of member states, grouped by command (Algorithm 2's
        clusters G_i)."""
        groups: dict[int, list[int]] = {}
        for i, state in enumerate(self.states):
            groups.setdefault(state.command, []).append(i)
        return groups

    def contains(self, state: np.ndarray, command: int) -> bool:
        """Concrete membership of ``(state, command)`` in the union."""
        return any(s.contains(state, command) for s in self.states)

    def hull_box(self) -> Box:
        """Hull of all boxes, commands ignored (diagnostics only)."""
        from ..intervals import hull_of_boxes

        return hull_of_boxes([s.box for s in self.states])

    def copy(self) -> "SymbolicSet":
        return SymbolicSet(list(self.states))

    def __repr__(self) -> str:
        return f"SymbolicSet({len(self.states)} states, commands={sorted(self.commands())})"


def resize(symbolic_set: SymbolicSet, threshold: int) -> int:
    """Algorithm 2 (RESIZE): join closest same-command states in place
    until at most ``threshold`` symbolic states remain.

    Returns the number of joins performed. Requires ``threshold`` to be
    at least the number of distinct commands present (Remark 3),
    because states with different commands can never be joined.
    """
    distinct = len(symbolic_set.commands())
    if threshold < distinct:
        raise ValueError(
            f"threshold {threshold} below the {distinct} distinct commands "
            "present; no sequence of joins can reach it (Remark 3)"
        )
    joins = 0
    if len(symbolic_set) <= threshold:
        return 0
    # Vectorized closest-pair search. The scalar loop evaluated
    # d = sum((center_a - center_b)**2) per candidate pair and kept the
    # first strict minimum in enumeration order (clusters in
    # first-appearance order, (a, b) lexicographic). The batched version
    # computes the same distances columnwise — numpy's elementwise ops
    # and the left-to-right accumulation reproduce the scalar floats bit
    # for bit, and np.argmin returns the first occurrence of the
    # minimum, which is exactly the strict-< tie-break. Box centers are
    # cached across iterations: a join only removes two rows and
    # appends one.
    centers: list[np.ndarray] = [s.box.center for s in symbolic_set.states]
    while len(symbolic_set) > threshold:
        groups = symbolic_set.group_by_command()
        pair_a: list[int] = []
        pair_b: list[int] = []
        for indices in groups.values():
            for a in range(len(indices)):
                ia = indices[a]
                for b in range(a + 1, len(indices)):
                    pair_a.append(ia)
                    pair_b.append(indices[b])
        if not pair_a:  # pragma: no cover - excluded by the threshold check
            break
        cm = np.stack(centers)
        diff = cm[pair_a] - cm[pair_b]
        sq = diff * diff
        # sound: ok [S001] join-ordering heuristic, not a bound
        # computation; the accumulation order matches the scalar
        # np.sum(diff * diff) exactly (sequential for short vectors).
        dist = sq[:, 0].copy()
        for k in range(1, sq.shape[1]):
            dist = dist + sq[:, k]
        if np.isnan(dist).any():  # pragma: no cover - degenerate boxes
            # Replicate the scalar strict-< scan, whose NaN comparisons
            # are all False (np.argmin would pick the first NaN instead).
            best_idx = 0
            for idx in range(1, dist.shape[0]):
                if dist[idx] < dist[best_idx]:
                    best_idx = idx
        else:
            best_idx = int(np.argmin(dist))
        i, j = pair_a[best_idx], pair_b[best_idx]
        joined = symbolic_set[i].join(symbolic_set[j])
        # Remove the higher index first to keep the lower one valid.
        del symbolic_set.states[j]
        del symbolic_set.states[i]
        del centers[j]
        del centers[i]
        symbolic_set.add(joined)
        centers.append(joined.box.center)
        joins += 1
    return joins
