"""Initial-set partitioning and split refinement (Section 7.1).

The paper partitions the possible initial states into many small boxes
— both to keep each reachability run precise (Lipschitz continuity
means smaller boxes stay smaller) and to parallelize. When a cell
cannot be proved safe it is *split-refined*: bisected along the
uncertain dimensions (``2**len(dims)`` children, depth capped), and the
children are retried.

The ``influence`` policy implements the Section 8 future-work idea:
split only along the single most influential dimension instead of all
of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..intervals import Box


def grid_partition(box: Box, counts: Sequence[int]) -> list[Box]:
    """Split ``box`` into a uniform grid, ``counts[i]`` cells per axis."""
    if len(counts) != box.dim:
        raise ValueError("one count per dimension required")
    if any(c < 1 for c in counts):
        raise ValueError("counts must be positive")
    edges = [np.linspace(box.lo[i], box.hi[i], counts[i] + 1) for i in range(box.dim)]
    cells: list[Box] = []
    index = np.zeros(box.dim, dtype=int)
    total = int(np.prod(counts))
    for flat in range(total):
        rem = flat
        for d in range(box.dim - 1, -1, -1):
            index[d] = rem % counts[d]
            rem //= counts[d]
        lo = np.array([edges[d][index[d]] for d in range(box.dim)])
        hi = np.array([edges[d][index[d] + 1] for d in range(box.dim)])
        cells.append(Box(lo, hi))
    return cells


@dataclass(frozen=True)
class RefinementPolicy:
    """How to split a cell that could not be proved safe.

    * ``mode="bisect_all"`` — the paper's scheme: bisect along every
      dimension in ``dims`` (``2**len(dims)`` children);
    * ``mode="influence"`` — bisect along the single dimension in
      ``dims`` with the highest ``influence * width`` score (2
      children); ``influence_fn`` maps a box to per-dimension scores
      and defaults to uniform (i.e. widest-dimension splitting).
    """

    dims: tuple[int, ...]
    max_depth: int = 2
    mode: str = "bisect_all"
    influence_fn: Callable[[Box], np.ndarray] | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("bisect_all", "influence"):
            raise ValueError("mode must be 'bisect_all' or 'influence'")
        if not self.dims:
            raise ValueError("at least one refinement dimension required")
        if self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")

    def children(self, box: Box) -> list[Box]:
        """The child boxes of one refinement step."""
        if self.mode == "bisect_all":
            return box.bisect_all(list(self.dims))
        scores = self._scores(box)
        weighted = scores * box.widths
        best = max(self.dims, key=lambda d: weighted[d])
        return list(box.bisect(best))

    def branching(self) -> int:
        """Number of children per refinement (the paper's ``2**3``)."""
        if self.mode == "bisect_all":
            return 2 ** len(self.dims)
        return 2

    def _scores(self, box: Box) -> np.ndarray:
        if self.influence_fn is None:
            return np.ones(box.dim)
        scores = np.asarray(self.influence_fn(box), dtype=float)
        if scores.shape != (box.dim,):
            raise ValueError("influence_fn must return one score per dimension")
        return scores
