"""Length-prefixed JSON framing for the distributed campaign protocol.

The coordinator (:mod:`repro.core.coordinator`) and node agents
(:mod:`repro.core.node`) talk over plain TCP — localhost and multi-host
alike — exchanging *frames*: a 4-byte big-endian length header followed
by a UTF-8 JSON document. JSON keeps the protocol debuggable
(``tcpdump`` shows readable grants and results) and versionable (old
peers skip fields they do not know); the length prefix makes message
boundaries explicit, so a frame is either delivered whole or the
connection is visibly broken — there is no "half a result" state for
the lease machinery to misread.

Two consumption styles, matching the two sides of the protocol:

* :func:`recv_frame` — blocking read of exactly one frame (the node
  agent's main loop, which has nothing to do until the coordinator
  speaks);
* :class:`FrameDecoder` — incremental feed/drain for the coordinator's
  ``selectors`` event loop, where a single ``recv`` may carry a burst
  of result frames from a fast node, or half of one.
"""

from __future__ import annotations

import json
import socket
import struct

#: 4-byte big-endian unsigned frame length.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame. A grant for a whole shard of a
#: paper-scale partition (~thousands of cells at ~200 bytes each) fits
#: comfortably; anything larger is a corrupt header or a stray client,
#: and must not make the receiver allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ConnectionError):
    """A malformed frame: bad header, oversized length, or non-JSON
    payload. Treated like a broken connection — the peer is not
    speaking the protocol, so the link is torn down and the lease
    machinery recovers exactly as it would from a crash."""


def encode_frame(payload: dict) -> bytes:
    """One wire-ready frame: header + compact JSON."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    return HEADER.pack(len(data)) + data


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Send one frame (``sendall``: whole frame or an OSError)."""
    sock.sendall(encode_frame(payload))


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; raises ``EOFError`` on a clean close
    mid-read (the peer died — let the caller's recovery path run)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError(f"connection closed with {remaining} bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Blocking read of one frame (node-agent side)."""
    (length,) = HEADER.unpack(recv_exact(sock, HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame header announces {length} bytes")
    data = recv_exact(sock, length)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(f"frame is {type(payload).__name__}, expected object")
    return payload


class FrameDecoder:
    """Incremental frame decoder for non-blocking sockets.

    Feed it whatever ``recv`` returned; it yields every complete frame
    and buffers the tail. One decoder per connection — the buffer *is*
    the connection's read state.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return frames
            (length,) = HEADER.unpack(self._buffer[: HEADER.size])
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"frame header announces {length} bytes")
            end = HEADER.size + length
            if len(self._buffer) < end:
                return frames
            data_bytes = bytes(self._buffer[HEADER.size : end])
            del self._buffer[:end]
            try:
                payload = json.loads(data_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"undecodable frame: {exc}") from exc
            if not isinstance(payload, dict):
                raise FrameError(
                    f"frame is {type(payload).__name__}, expected object"
                )
            frames.append(payload)


def parse_hostport(spec: str, default_port: int = 0) -> tuple[str, int]:
    """``HOST:PORT`` / ``HOST`` / ``:PORT`` → ``(host, port)``.

    A bare host listens/connects on ``default_port``; a bare ``:PORT``
    means localhost.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty host:port")
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        return spec, default_port
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"bad port in {spec!r}: {port_text!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {spec!r}")
    return host, port
