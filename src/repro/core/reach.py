"""The reachability procedure (Section 6.3, Algorithms 1 and 3).

Starting from a symbolic set enclosing the initial states, the
procedure alternates, for each control step ``j``:

1. **Plant over-approximation** (Algorithm 1 / SIMULATE): validated
   simulation of the flow over ``[jT, (j+1)T]`` in ``M`` substeps,
   yielding the over-the-period tube ``[s_[j[]`` and the endpoint box
   ``[s_{j+1}]``;
2. **Controller over-approximation**: ``Pre#`` then ``F#`` of the
   network selected by ``λ(u_j)`` then ``Post#``, yielding the set of
   reachable next commands;

with the RESIZE join heuristic (Algorithm 2) bounding the number of
symbolic states by ``Γ``, and the termination mechanism that stops
propagating symbolic states wholly inside the target set ``T``.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

import numpy as np

from ..intervals import Box, BoxBatch, batching_enabled
from ..obs import get_recorder
from ..sets import resolve_for_command
from .symbolic import SymbolicSet, SymbolicState, resize
from .system import ClosedLoopSystem


class Verdict(enum.Enum):
    """Outcome of a reachability run (Algorithm 3's return value,
    refined into three cases)."""

    #: No reachable state meets E and the loop provably terminated:
    #: Algorithm 3 returns True.
    PROVED_SAFE = "proved-safe"
    #: No reachable state meets E within the horizon, but termination
    #: could not be established (hasTerminated is False).
    SAFE_WITHIN_HORIZON = "safe-within-horizon"
    #: Some over-approximate state meets E: the proof attempt fails
    #: (the system may still be safe — the approximation was too loose).
    POSSIBLY_UNSAFE = "possibly-unsafe"
    #: Quarantine verdicts assigned by the campaign runner, never by
    #: the reachability procedure itself: the cell's verification did
    #: not complete. Both count as unproved for coverage; the failure
    #: reason rides in ``CellResult.tags["failure"]``.
    #: The worker crashed (repeatedly) or the procedure raised.
    ABORTED = "aborted"
    #: The cell exceeded its wall-clock budget and was cut off.
    TIMED_OUT = "timed-out"


@dataclass(frozen=True)
class ReachSettings:
    """Tuning of the procedure: the paper's ``M`` and ``Γ`` plus
    bookkeeping switches."""

    #: Number of validated-integration substeps per control period
    #: (Section 6.4 "improving precision", Fig. 7).
    substeps: int = 10
    #: Threshold Γ on the number of symbolic states per step
    #: (Section 6.4 "improving time complexity", Algorithm 2).
    max_symbolic_states: int = 5
    #: Stop at the first possible E-intersection (cheaper) or keep
    #: going to map every unsafe step (diagnostics).
    early_exit_on_unsafe: bool = True
    #: Record the per-step symbolic sets and flow tubes in the result.
    record_sets: bool = False
    #: Route :func:`reach` through the lockstep driver so all symbolic
    #: states of a step share one batched integrator call (bitwise
    #: identical to the scalar path; ``REPRO_BATCHED=0`` overrides).
    batch_states: bool = False

    def __post_init__(self) -> None:
        if self.substeps < 1:
            raise ValueError("substeps (M) must be >= 1")
        if self.max_symbolic_states < 1:
            raise ValueError("max_symbolic_states (Γ) must be >= 1")


@dataclass
class TubeSegment:
    """One recorded piece of ``R_[j[``: a time window, box and command."""

    t_start: float
    t_end: float
    box: Box
    command: int


@dataclass
class ReachResult:
    """Everything Algorithm 3 produces, plus diagnostics."""

    verdict: Verdict
    has_terminated: bool
    termination_step: int | None
    steps_completed: int
    joins_performed: int = 0
    integrations: int = 0
    controller_evaluations: int = 0
    elapsed_seconds: float = 0.0
    #: First time window possibly meeting E (None when safe).
    unsafe_time: float | None = None
    unsafe_command: int | None = None
    #: Recorded per-step symbolic sets R_0 .. R_jend (record_sets only).
    step_sets: list[SymbolicSet] = field(default_factory=list)
    #: Recorded flow-tube segments (record_sets only).
    tube: list[TubeSegment] = field(default_factory=list)

    @property
    def proved_safe(self) -> bool:
        """Algorithm 3 line 31: safe until termination."""
        return self.verdict is Verdict.PROVED_SAFE

    @property
    def no_error_reached(self) -> bool:
        return self.verdict is not Verdict.POSSIBLY_UNSAFE


def reach(
    system: ClosedLoopSystem,
    initial: SymbolicSet,
    settings: ReachSettings | None = None,
) -> ReachResult:
    """Run Algorithm 3 from the initial symbolic set ``R_0 ⊇ I``."""
    settings = settings or ReachSettings()
    if settings.batch_states and batching_enabled():
        return reach_many(system, [initial], settings)[0]
    num_commands = len(system.commands)
    if settings.max_symbolic_states < num_commands:
        raise ValueError(
            f"Γ = {settings.max_symbolic_states} must be at least the number "
            f"of commands P = {num_commands} (Remark 3)"
        )
    if len(initial) == 0:
        raise ValueError("the initial symbolic set is empty")

    rec = get_recorder()
    started = time.perf_counter()
    result = ReachResult(
        verdict=Verdict.SAFE_WITHIN_HORIZON,
        has_terminated=False,
        termination_step=None,
        steps_completed=0,
    )

    current = initial.copy()
    period = system.period
    target = system.target
    erroneous = system.erroneous
    unsafe_found = False

    if settings.record_sets:
        result.step_sets.append(current.copy())

    for j in range(system.horizon_steps):
        with rec.span("join", step=j, states=len(current)):
            joins = resize(current, settings.max_symbolic_states)
        result.joins_performed += joins
        if joins:
            rec.inc("reach.joins", joins)

        # E and T may be command-dependent (subsets of R^l x U,
        # Section 4.1): resolve them against each state's concrete
        # command (exact, since symbolic states carry commands).
        with rec.span("terminate", step=j):
            active = [
                s
                for s in current
                if not resolve_for_command(target, s.command).contains_box(s.box)
            ]
        if not active:
            result.has_terminated = True
            result.termination_step = j
            break

        next_set = SymbolicSet()
        for state in active:
            erroneous_now = resolve_for_command(erroneous, state.command)
            command_value = system.commands.value(state.command)
            with rec.span("integrate", step=j, command=state.command):
                pipe = system.plant.flow(
                    j * period,
                    (j + 1) * period,
                    state.box,
                    command_value,
                    settings.substeps,
                )
            result.integrations += len(pipe.steps)
            rec.inc("reach.integrations", len(pipe.steps))
            for step in pipe.steps:
                if settings.record_sets:
                    result.tube.append(
                        TubeSegment(step.t_start, step.t_end, step.range_box, state.command)
                    )
                if not erroneous_now.disjoint_box(step.range_box):
                    unsafe_found = True
                    rec.event(
                        "reach.unsafe",
                        step=j,
                        t=step.t_start,
                        command=state.command,
                    )
                    if result.unsafe_time is None:
                        result.unsafe_time = step.t_start
                        result.unsafe_command = state.command
                    if settings.early_exit_on_unsafe:
                        result.verdict = Verdict.POSSIBLY_UNSAFE
                        result.steps_completed = j
                        result.elapsed_seconds = time.perf_counter() - started
                        return result

            with rec.span("controller", step=j, command=state.command):
                next_commands = system.controller.execute_abstract(
                    state.box, state.command
                )
            result.controller_evaluations += 1
            rec.inc("reach.controller_evaluations")
            end_box = pipe.end_box
            for command in next_commands:
                next_set.add(SymbolicState(end_box, command))

        current = next_set
        result.steps_completed = j + 1
        rec.inc("reach.steps")
        if settings.record_sets:
            result.step_sets.append(current.copy())

        # Algorithm 3 line 23: all fresh states inside T => terminated.
        if all(
            resolve_for_command(target, s.command).contains_box(s.box)
            for s in current
        ):
            result.has_terminated = True
            result.termination_step = j + 1
            break

    if unsafe_found:
        result.verdict = Verdict.POSSIBLY_UNSAFE
    elif result.has_terminated:
        result.verdict = Verdict.PROVED_SAFE
    else:
        result.verdict = Verdict.SAFE_WITHIN_HORIZON
    result.elapsed_seconds = time.perf_counter() - started
    return result


@dataclass
class _LiveCell:
    """Bookkeeping for one initial set inside :func:`reach_many`."""

    current: SymbolicSet
    result: ReachResult
    finished: bool = False
    unsafe_found: bool = False
    active: list[SymbolicState] = field(default_factory=list)
    row_start: int = 0
    survivors: int = 0
    elapsed: float = 0.0


def reach_many(
    system: ClosedLoopSystem,
    initial_sets: list[SymbolicSet],
    settings: ReachSettings | None = None,
) -> list[ReachResult]:
    """Run Algorithm 3 on many initial sets in lockstep.

    All runs advance through the control steps together: at step ``j``
    every live run's active symbolic states are concatenated into one
    :class:`~repro.intervals.batched.BoxBatch` and flowed through a
    single ``Plant.flow_batch`` call, amortizing the per-operation numpy
    dispatch overhead across the whole wave (the batched kernels are
    bitwise identical to the scalar path row by row, so each returned
    :class:`ReachResult` matches what :func:`reach` would have produced
    for that initial set alone — same verdicts, same boxes, same join
    and controller decisions).

    Per-cell ``elapsed_seconds`` is attributed by measuring each run's
    own bookkeeping and splitting the shared integrator call
    proportionally to its row count (an approximation; the scalar path
    measures each cell exactly).
    """
    settings = settings or ReachSettings()
    num_commands = len(system.commands)
    if settings.max_symbolic_states < num_commands:
        raise ValueError(
            f"Γ = {settings.max_symbolic_states} must be at least the number "
            f"of commands P = {num_commands} (Remark 3)"
        )
    for initial in initial_sets:
        if len(initial) == 0:
            raise ValueError("an initial symbolic set is empty")

    rec = get_recorder()
    period = system.period
    target = system.target
    erroneous = system.erroneous

    cells: list[_LiveCell] = []
    for initial in initial_sets:
        result = ReachResult(
            verdict=Verdict.SAFE_WITHIN_HORIZON,
            has_terminated=False,
            termination_step=None,
            steps_completed=0,
        )
        current = initial.copy()
        if settings.record_sets:
            result.step_sets.append(current.copy())
        cells.append(_LiveCell(current=current, result=result))

    for j in range(system.horizon_steps):
        live = [c for c in cells if not c.finished]
        if not live:
            break

        # --- join + termination filter, per cell (cheap, scalar-shaped)
        batch_rows = 0
        for cell in live:
            tick = time.perf_counter()
            current = cell.current
            result = cell.result
            with rec.span("join", step=j, states=len(current)):
                joins = resize(current, settings.max_symbolic_states)
            result.joins_performed += joins
            if joins:
                rec.inc("reach.joins", joins)
            with rec.span("terminate", step=j):
                active = [
                    s
                    for s in current
                    if not resolve_for_command(target, s.command).contains_box(s.box)
                ]
            if not active:
                result.has_terminated = True
                result.termination_step = j
                cell.finished = True
            else:
                cell.active = active
                cell.row_start = batch_rows
                batch_rows += len(active)
            cell.elapsed += time.perf_counter() - tick
        live = [c for c in live if not c.finished]
        if not live:
            continue

        # --- one batched integrator call over the whole wave
        all_states = [s for cell in live for s in cell.active]
        boxes = BoxBatch.from_boxes([s.box for s in all_states])
        u_rows = np.stack([system.commands.value(s.command) for s in all_states])
        tick = time.perf_counter()
        with rec.span("integrate", step=j, states=len(all_states)):
            pipes = system.plant.flow_batch(
                j * period, (j + 1) * period, boxes, u_rows, settings.substeps
            )
        integrate_elapsed = time.perf_counter() - tick
        for cell in live:
            cell.elapsed += integrate_elapsed * len(cell.active) / len(all_states)

        # --- batched unsafe scan: one disjoint query per distinct command
        substep_count = pipes.substep_count
        disjoint_all = np.empty((substep_count, len(all_states)), dtype=bool)
        rows_by_command: dict[int, list[int]] = {}
        for r, s in enumerate(all_states):
            rows_by_command.setdefault(s.command, []).append(r)
        for command, rows in rows_by_command.items():
            erroneous_now = resolve_for_command(erroneous, command)
            checker = getattr(erroneous_now, "disjoint_box_batch", None)
            if checker is not None:
                # sound: ok [S004] disjoint_all is a boolean disjointness
                # scratch table, not interval endpoint storage; the taint
                # arrives transitively through substep metadata.
                disjoint_all[:, rows] = checker(
                    pipes.range_lo[:, rows, :], pipes.range_hi[:, rows, :]
                )
            else:
                for r in rows:
                    range_lo, range_hi = pipes.range_arrays(r)
                    for k in range(substep_count):
                        # sound: ok [S004] same boolean scratch table as the
                        # batched branch above.
                        disjoint_all[k, r] = erroneous_now.disjoint_box(
                            Box(range_lo[k], range_hi[k])
                        )

        # --- per-cell unsafe bookkeeping, replicating the scalar loop
        survivor_states: list[SymbolicState] = []
        survivor_rows: list[int] = []
        for cell in live:
            tick = time.perf_counter()
            result = cell.result
            cell.survivors = 0
            exited = False
            for offset, state in enumerate(cell.active):
                row = cell.row_start + offset
                result.integrations += substep_count
                rec.inc("reach.integrations", substep_count)
                for k in range(substep_count):
                    if settings.record_sets:
                        result.tube.append(
                            TubeSegment(
                                float(pipes.t_starts[k]),
                                float(pipes.t_ends[k]),
                                Box(pipes.range_lo[k, row], pipes.range_hi[k, row]),
                                state.command,
                            )
                        )
                    if not disjoint_all[k, row]:
                        cell.unsafe_found = True
                        rec.event(
                            "reach.unsafe",
                            step=j,
                            t=float(pipes.t_starts[k]),
                            command=state.command,
                        )
                        if result.unsafe_time is None:
                            result.unsafe_time = float(pipes.t_starts[k])
                            result.unsafe_command = state.command
                        if settings.early_exit_on_unsafe:
                            result.verdict = Verdict.POSSIBLY_UNSAFE
                            result.steps_completed = j
                            cell.finished = True
                            exited = True
                            break
                if exited:
                    break
                survivor_states.append(state)
                survivor_rows.append(row)
                cell.survivors += 1
            # On early exit the cell keeps its survivor rows: the scalar
            # path evaluates the controller for every state processed
            # before the unsafe one (and only then returns), so those
            # rows stay in the controller batch to keep
            # reach.controller_evaluations identical between the two
            # paths. Their successors are discarded during assembly.
            cell.elapsed += time.perf_counter() - tick

        # --- one batched controller evaluation over every surviving state
        wave = live
        live = [c for c in live if not c.finished]
        command_lists: list[list[int]] = []
        if survivor_states:
            tick = time.perf_counter()
            with rec.span("controller", step=j, states=len(survivor_states)):
                batch_fn = getattr(system.controller, "execute_abstract_batch", None)
                if batch_fn is not None:
                    command_lists = batch_fn(
                        [s.box for s in survivor_states],
                        [s.command for s in survivor_states],
                    )
                else:
                    command_lists = [
                        system.controller.execute_abstract(s.box, s.command)
                        for s in survivor_states
                    ]
            rec.inc("reach.controller_evaluations", len(survivor_states))
            controller_elapsed = time.perf_counter() - tick
            for cell in wave:
                cell.elapsed += (
                    controller_elapsed * cell.survivors / len(survivor_states)
                )

        # --- per-cell successor assembly and termination check
        cursor = 0
        for cell in wave:
            tick = time.perf_counter()
            result = cell.result
            if cell.finished:
                # Early-exited cell: count the controller work done for
                # its pre-unsafe states, drop the successors.
                result.controller_evaluations += cell.survivors
                cursor += cell.survivors
                cell.elapsed += time.perf_counter() - tick
                continue
            next_set = SymbolicSet()
            for _ in range(cell.survivors):
                row = survivor_rows[cursor]
                next_commands = command_lists[cursor]
                cursor += 1
                result.controller_evaluations += 1
                end_box = pipes.end_box(row)
                for command in next_commands:
                    next_set.add(SymbolicState(end_box, command))
            cell.current = next_set
            result.steps_completed = j + 1
            rec.inc("reach.steps")
            if settings.record_sets:
                result.step_sets.append(next_set.copy())
            if all(
                resolve_for_command(target, s.command).contains_box(s.box)
                for s in next_set
            ):
                result.has_terminated = True
                result.termination_step = j + 1
                cell.finished = True
            cell.elapsed += time.perf_counter() - tick

    for cell in cells:
        result = cell.result
        if cell.unsafe_found:
            result.verdict = Verdict.POSSIBLY_UNSAFE
        elif result.has_terminated:
            result.verdict = Verdict.PROVED_SAFE
        else:
            result.verdict = Verdict.SAFE_WITHIN_HORIZON
        result.elapsed_seconds = cell.elapsed
    return [cell.result for cell in cells]


def reach_from_box(
    system: ClosedLoopSystem,
    initial_box: Box,
    initial_command: int,
    settings: ReachSettings | None = None,
) -> ReachResult:
    """Convenience wrapper: run :func:`reach` from one symbolic state."""
    initial = SymbolicSet([SymbolicState(initial_box, initial_command)])
    return reach(system, initial, settings)
