"""The closed-loop system model (Section 4, Fig. 2).

``ClosedLoopSystem`` combines a continuous-time :class:`Plant` with a
discrete-time :class:`Controller` through a signal sampler and a
zero-order hold. The controller follows the paper's generic shape: a
pre-processing, a bank of ReLU networks with a selection function
``λ`` keyed on the previous command, and a post-processing mapping
network scores to one of finitely many commands.

Every component carries both its *concrete* semantics (used by the
plain simulator and the falsifier) and its *abstract* semantics
(``Pre#``, ``F#``, ``Post#`` — used by the reachability procedure).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import numpy as np

from ..intervals import Box, BoxBatch
from ..nn import Network
from ..obs import get_recorder
from ..sets import SetSpec
from ..verify import SymbolicPropagator, possible_argmin


class CommandSet:
    """The finite command set ``U = {u^(1), ..., u^(P)}`` (Section 4.1)."""

    def __init__(self, values: np.ndarray | Sequence[Sequence[float]], names: Sequence[str] | None = None):
        arr = np.asarray(values, dtype=float)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValueError("command set must be a non-empty (P, d) array")
        self.values = arr
        if names is None:
            names = [f"u{i}" for i in range(arr.shape[0])]
        if len(names) != arr.shape[0]:
            raise ValueError("one name per command required")
        self.names = list(names)

    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def dim(self) -> int:
        return self.values.shape[1]

    def value(self, index: int) -> np.ndarray:
        return self.values[index]

    def name(self, index: int) -> str:
        return self.names[index]

    def index_of(self, value: Sequence[float]) -> int:
        target = np.asarray(value, dtype=float).reshape(-1)
        for i in range(len(self)):
            if np.allclose(self.values[i], target):
                return i
        raise KeyError(f"{target} is not a command in this set")

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{n}={v.tolist()}" for n, v in zip(self.names, self.values)
        )
        return f"CommandSet({pairs})"


# ----------------------------------------------------------------------
# Pre- and post-processing stages
# ----------------------------------------------------------------------
class PreProcessing(Protocol):
    """The controller's input stage ``Pre`` and its transformer ``Pre#``."""

    def concrete(self, state: np.ndarray) -> np.ndarray:
        ...

    def abstract(self, box: Box) -> Box:
        ...


class PostProcessing(Protocol):
    """The controller's output stage ``Post`` and its transformer ``Post#``.

    Concrete: network scores -> command index. Abstract: score box ->
    sound superset of reachable command indices.
    """

    def concrete(self, scores: np.ndarray) -> int:
        ...

    def abstract(self, score_box: Box) -> list[int]:
        ...


class IdentityPre:
    """Pre-processing that feeds the sampled state straight to the network."""

    def concrete(self, state: np.ndarray) -> np.ndarray:
        return np.asarray(state, dtype=float)

    def abstract(self, box: Box) -> Box:
        return box


class FunctionPre:
    """Pre-processing from an explicit concrete/abstract function pair."""

    def __init__(
        self,
        concrete_fn: Callable[[np.ndarray], np.ndarray],
        abstract_fn: Callable[[Box], Box],
    ):
        self._concrete = concrete_fn
        self._abstract = abstract_fn

    def concrete(self, state: np.ndarray) -> np.ndarray:
        return self._concrete(state)

    def abstract(self, box: Box) -> Box:
        return self._abstract(box)


class ArgminPost:
    """Post-processing ``u_{j+1} = u^(k)``, ``k = argmin(scores)``.

    This is the paper's canonical post-processing (Section 4.3) and the
    one ACAS Xu uses. The abstract version returns every command index
    whose score could attain the minimum.
    """

    def concrete(self, scores: np.ndarray) -> int:
        return int(np.argmin(scores))

    def abstract(self, score_box: Box) -> list[int]:
        return possible_argmin(score_box)


class ArgmaxPost:
    """Dual of :class:`ArgminPost` for max-score conventions."""

    def concrete(self, scores: np.ndarray) -> int:
        return int(np.argmax(scores))

    def abstract(self, score_box: Box) -> list[int]:
        from ..verify import possible_argmax

        return possible_argmax(score_box)


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
class Controller:
    """The neural-network based controller ``N`` (Section 4.3).

    ``selector`` is the paper's ``λ``: it maps the previous command
    index to the index of the network to execute. With a single network
    the selector is constant (the simple case handled by prior work);
    ACAS Xu uses the identity (one network per previous advisory).
    """

    def __init__(
        self,
        networks: Sequence[Network],
        commands: CommandSet,
        pre: PreProcessing | None = None,
        post: PostProcessing | None = None,
        selector: Callable[[int], int] | None = None,
        propagator_factory: Callable[[Network], object] = SymbolicPropagator,
        memo_size: int = 4096,
    ):
        if not networks:
            raise ValueError("a controller needs at least one network")
        self.networks = list(networks)
        self.commands = commands
        self.pre = pre or IdentityPre()
        self.post = post or ArgminPost()
        self.selector = selector or (lambda command: 0)
        self.propagators = [propagator_factory(n) for n in self.networks]
        for index in range(len(commands)):
            chosen = self.selector(index)
            if not 0 <= chosen < len(self.networks):
                raise ValueError(
                    f"selector maps command {index} to invalid network {chosen}"
                )
        # Content-keyed LRU memo over the whole abstract pipeline
        # (Pre# -> F# -> Post#). The abstract step is a pure function of
        # the selected network and the input box, and the reach loop
        # re-propagates the same boxes often (joined states stabilize,
        # sibling cells share post-join boxes), so memoizing on the
        # exact endpoint bytes is safe and cheap. ``memo_size=0``
        # disables caching.
        self._memo_size = int(memo_size)
        self._memo: OrderedDict[tuple[int, bytes, bytes], tuple[int, ...]] = (
            OrderedDict()
        )

    # Concrete semantics -------------------------------------------------
    def execute(self, state: np.ndarray, previous_command: int) -> int:
        """One control step: returns the next command index."""
        network = self.networks[self.selector(previous_command)]
        x = self.pre.concrete(state)
        y = network.forward(x)
        return self.post.concrete(y)

    # Abstract semantics (Section 6.3, step 2) ---------------------------
    def execute_abstract(self, box: Box, previous_command: int) -> list[int]:
        """Sound superset of next command indices from a state box."""
        index = self.selector(previous_command)
        if self._memo_size > 0:
            key = (index, box.lo.tobytes(), box.hi.tobytes())
            cached = self._memo.get(key)
            if cached is not None:
                self._memo.move_to_end(key)
                get_recorder().inc("verify.memo_hits")
                return list(cached)
        x_box = self.pre.abstract(box)
        y_box = self.propagators[index](x_box)
        out = self.post.abstract(y_box)
        if self._memo_size > 0:
            self._memo[key] = tuple(out)
            if len(self._memo) > self._memo_size:
                self._memo.popitem(last=False)
        return out

    def execute_abstract_batch(
        self, boxes: Sequence[Box], previous_commands: Sequence[int]
    ) -> list[list[int]]:
        """Batched :meth:`execute_abstract` over many (box, command)
        pairs: one symbolic propagation per selected network covers all
        rows routed to it, and ``Pre#`` is batched too when the
        pre-processor offers ``abstract_batch`` (``Post#`` stays per-row
        — it is cheap and branch-heavy). Row ``i`` of the result is
        identical to ``execute_abstract(boxes[i], previous_commands[i])``
        — the batched propagator is bitwise-exact per row — and the memo
        is consulted and filled exactly as in the scalar path."""
        out: list[list[int] | None] = [None] * len(boxes)
        by_network: dict[int, list[int]] = {}
        for i, (box, previous) in enumerate(zip(boxes, previous_commands)):
            index = self.selector(previous)
            if self._memo_size > 0:
                key = (index, box.lo.tobytes(), box.hi.tobytes())
                cached = self._memo.get(key)
                if cached is not None:
                    self._memo.move_to_end(key)
                    get_recorder().inc("verify.memo_hits")
                    out[i] = list(cached)
                    continue
            by_network.setdefault(index, []).append(i)
        for index, rows in by_network.items():
            propagator = self.propagators[index]
            batched = getattr(propagator, "output_bounds_batch", None)
            pre_batch = getattr(self.pre, "abstract_batch", None)
            if batched is not None and len(rows) > 1:
                if pre_batch is not None:
                    lo, hi = pre_batch(
                        np.stack([boxes[i].lo for i in rows]),
                        np.stack([boxes[i].hi for i in rows]),
                    )
                else:
                    x_boxes = [self.pre.abstract(boxes[i]) for i in rows]
                    lo = np.stack([b.lo for b in x_boxes])
                    hi = np.stack([b.hi for b in x_boxes])
                out_lo, out_hi = batched(lo, hi)
                y_boxes = [Box(out_lo[r], out_hi[r]) for r in range(len(rows))]
            else:
                y_boxes = [propagator(self.pre.abstract(boxes[i])) for i in rows]
            for i, y_box in zip(rows, y_boxes):
                commands = self.post.abstract(y_box)
                if self._memo_size > 0:
                    key = (index, boxes[i].lo.tobytes(), boxes[i].hi.tobytes())
                    self._memo[key] = tuple(commands)
                    if len(self._memo) > self._memo_size:
                        self._memo.popitem(last=False)
                out[i] = commands
        return out  # type: ignore[return-value]

    def abstract_scores(self, box: Box, previous_command: int) -> Box:
        """The intermediate ``[y_j]`` score box (diagnostics/tests)."""
        index = self.selector(previous_command)
        return self.propagators[index](self.pre.abstract(box))


# ----------------------------------------------------------------------
# Plant and closed loop
# ----------------------------------------------------------------------
class Plant:
    """The continuous-time plant ``P`` with a validated integrator.

    ``integrator`` must provide ``integrate(t0, t1, box, u, substeps)``
    returning a :class:`~repro.ode.ivp.FlowPipe` —
    :class:`~repro.ode.TaylorIntegrator` or an analytic flow.
    ``simulate_point`` provides the concrete semantics used by the
    baselines (high-accuracy scipy integration).
    """

    def __init__(self, system, integrator):
        self.system = system
        self.integrator = integrator

    @property
    def dim(self) -> int:
        return self.system.dim

    def flow(self, t0: float, t1: float, box: Box, u: np.ndarray, substeps: int):
        return self.integrator.integrate(t0, t1, box, u, substeps=substeps)

    def flow_batch(
        self,
        t0: float,
        t1: float,
        boxes: BoxBatch,
        u_rows: np.ndarray,
        substeps: int,
    ):
        """Batched :meth:`flow`: one tube per row of ``boxes``, with
        per-row commands. Falls back to row-by-row integration when the
        integrator has no batched driver."""
        batched = getattr(self.integrator, "integrate_batch", None)
        if batched is not None:
            return batched(t0, t1, boxes, u_rows, substeps=substeps)
        from ..ode.ivp import FlowPipeBatch

        pipes = [
            self.integrator.integrate(
                t0, t1, boxes.row(i), u_rows[i], substeps=substeps
            )
            for i in range(boxes.count)
        ]
        steps = [p.steps for p in pipes]
        return FlowPipeBatch(
            t_starts=np.array([s.t_start for s in steps[0]]),
            t_ends=np.array([s.t_end for s in steps[0]]),
            range_lo=np.stack(
                [[s.range_box.lo for s in row] for row in steps], axis=1
            ),
            range_hi=np.stack(
                [[s.range_box.hi for s in row] for row in steps], axis=1
            ),
            end_lo=np.stack([[s.end_box.lo for s in row] for row in steps], axis=1),
            end_hi=np.stack([[s.end_box.hi for s in row] for row in steps], axis=1),
        )

    def simulate_point(
        self, t0: float, t1: float, state: np.ndarray, u: np.ndarray, rtol: float = 1e-10
    ) -> np.ndarray:
        from scipy.integrate import solve_ivp

        sol = solve_ivp(
            lambda t, s: self.system.eval_point(t, s, u),
            (t0, t1),
            np.asarray(state, dtype=float),
            rtol=rtol,
            atol=1e-12,
        )
        return sol.y[:, -1]


@dataclass
class ClosedLoopSystem:
    """The closed loop ``C = (P, N)`` with its safety context.

    * ``period`` — the controller period ``T``;
    * ``erroneous`` — the set ``E`` (states causing a failure);
    * ``target`` — the set ``T`` (mission accomplished, loop terminates);
    * ``horizon_steps`` — ``q`` with ``τ = q * period``.
    """

    plant: Plant
    controller: Controller
    period: float
    erroneous: SetSpec
    target: SetSpec
    horizon_steps: int
    name: str = "closed-loop"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError("controller period must be positive")
        if self.horizon_steps < 1:
            raise ValueError("horizon must cover at least one control step")

    @property
    def commands(self) -> CommandSet:
        return self.controller.commands

    @property
    def horizon(self) -> float:
        """The time horizon τ = q T."""
        return self.horizon_steps * self.period
