"""repro — safety verification of neural network controlled systems.

A from-scratch reproduction of Claviere, Asselin, Garion & Pagetti,
*Safety Verification of Neural Network Controlled Systems* (DSN 2021):
a reachability analysis for closed loops of a continuous-time plant and
a discrete-time ReLU-network controller, combining validated ODE
simulation with abstract interpretation of the controller, evaluated on
the neural-network ACAS Xu.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.intervals`  — interval/affine arithmetic substrate;
* :mod:`repro.ode`        — validated simulation (DynIBEX substitute);
* :mod:`repro.nn`         — ReLU networks, trainer, .nnet format;
* :mod:`repro.verify`     — NN abstract interpretation (ReluVal substitute);
* :mod:`repro.sets`       — state-set specifications (I, E, T);
* :mod:`repro.obs`        — metrics, tracing and campaign progress;
* :mod:`repro.core`       — the paper's procedure (Algorithms 1-3);
* :mod:`repro.acasxu`     — the ACAS Xu use case;
* :mod:`repro.baselines`  — simulation, falsification, discrete baseline;
* :mod:`repro.experiments`— figure-by-figure evaluation harness.
"""

__version__ = "1.0.0"

__all__ = [
    "acasxu",
    "baselines",
    "core",
    "experiments",
    "intervals",
    "nn",
    "obs",
    "ode",
    "sets",
    "verify",
]
