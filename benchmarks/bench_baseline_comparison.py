"""Comparator A3 — the sound procedure vs the discrete-instant baseline.

Section 2 argues the ad hoc approach of [7] (Julian & Kochenderfer,
DASC'19) "is not totally sound as it does not evaluate the reachable
states for all instants". This bench (1) times both analyses on the
same ACAS cell, and (2) demonstrates the blind spot on a constructed
plant whose flow dips into E strictly between sampling instants: the
baseline reports no collision while Algorithm 3 flags it.
"""

import math

import numpy as np
import pytest

from repro.baselines import DiscreteVerdict, discrete_instant_analysis
from repro.core import (
    ArgminPost,
    ClosedLoopSystem,
    CommandSet,
    Controller,
    Plant,
    ReachSettings,
    Verdict,
    reach_from_box,
)
from repro.intervals import Box
from repro.nn import Network
from repro.ode import ODESystem, TaylorIntegrator, gcos
from repro.sets import BoxSet, EmptySet


def test_sound_procedure_on_acas_cell(benchmark, tiny_system, representative_cell):
    box, command = representative_cell
    settings = ReachSettings(substeps=10, max_symbolic_states=5)
    result = benchmark(reach_from_box, tiny_system, box, command, settings)
    benchmark.extra_info["method"] = "sound-reachability (this paper)"
    benchmark.extra_info["verdict"] = result.verdict.value


def test_baseline_on_acas_cell(benchmark, tiny_system, representative_cell):
    box, command = representative_cell
    result = benchmark(
        discrete_instant_analysis, tiny_system, box, command
    )
    benchmark.extra_info["method"] = "discrete-instant baseline [7]"
    benchmark.extra_info["verdict"] = result.verdict.value
    benchmark.extra_info["points_explored"] = result.points_explored


@pytest.fixture(scope="module")
def dipper_system():
    """s(t) = s0 + u*sin(pi*t): visits E mid-period, back at instants."""
    commands = CommandSet(np.array([[-3.5]]), names=["dip"])
    controller = Controller(
        networks=[Network([np.array([[1.0]])], [np.zeros(1)])],
        commands=commands,
        post=ArgminPost(),
    )
    ode = ODESystem(
        rhs=lambda t, s, u: [gcos(t * math.pi) * (math.pi * float(u[0]))],
        dim=1,
        name="dipper",
    )
    return ClosedLoopSystem(
        plant=Plant(ode, TaylorIntegrator(ode)),
        controller=controller,
        period=1.0,
        erroneous=BoxSet(Box([-np.inf], [-3.0])),
        target=EmptySet(),
        horizon_steps=3,
        name="dipper-loop",
    )


def test_blind_spot_demonstration(benchmark, dipper_system, capsys):
    cell = Box([-0.05], [0.05])
    baseline = discrete_instant_analysis(dipper_system, cell, 0)
    sound = benchmark(
        reach_from_box,
        dipper_system,
        cell,
        0,
        ReachSettings(substeps=8, max_symbolic_states=2),
    )
    with capsys.disabled():
        print("\nA3 — between-sample excursion into E:")
        print(f"  discrete-instant baseline [7]: {baseline.verdict.value}")
        print(f"  sound procedure (Algorithm 3): {sound.verdict.value} "
              f"(first possible entry at t = {sound.unsafe_time}s)")
    assert baseline.verdict is DiscreteVerdict.NO_COLLISION_FOUND
    assert sound.verdict is Verdict.POSSIBLY_UNSAFE
    assert 0.0 <= sound.unsafe_time < 1.0
