"""Ablation — split-refinement strategies (Section 8 future work).

The paper uses blind 2^3-way bisection on (x0, y0, psi0) and proposes,
as future work, "identifying the variable having the most influence on
the overall system behaviour, and splitting along the corresponding
dimension only". Both are implemented; this bench compares them on
failing cells: coverage recovered per child verified.
"""

import numpy as np
import pytest

from repro.core import (
    ReachSettings,
    RefinementPolicy,
    RunnerSettings,
    Verdict,
    verify_cell,
)


def _count_nodes(result):
    return 1 + sum(_count_nodes(c) for c in result.children)


@pytest.fixture(scope="module")
def failing_cells(tiny_system):
    from repro.acasxu import initial_cells

    cells = initial_cells(16, 4)
    plain = RunnerSettings(reach=ReachSettings(substeps=10, max_symbolic_states=5))
    failing = []
    for box, command, tags in cells:
        if len(failing) >= 3:
            break
        result = verify_cell(tiny_system, box, command, plain)
        if result.verdict is not Verdict.PROVED_SAFE:
            failing.append((box, command))
    assert failing, "the scaled partition should contain failing cells"
    return failing


def _policy(mode):
    if mode == "bisect_all":
        return RefinementPolicy(dims=(0, 1, 2), max_depth=2, mode="bisect_all")
    return RefinementPolicy(dims=(0, 1, 2), max_depth=3, mode="influence")


@pytest.mark.parametrize("mode", ["bisect_all", "influence"])
def test_refinement_strategy(benchmark, tiny_system, failing_cells, mode):
    box, command = failing_cells[0]
    settings = RunnerSettings(
        reach=ReachSettings(substeps=10, max_symbolic_states=5),
        refinement=_policy(mode),
    )

    result = benchmark.pedantic(
        verify_cell, args=(tiny_system, box, command, settings), rounds=1, iterations=1
    )
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["coverage_fraction"] = result.coverage_fraction()
    benchmark.extra_info["nodes_verified"] = _count_nodes(result)


def test_both_strategies_recover_coverage(benchmark, tiny_system, failing_cells, capsys):
    rows = []

    def evaluate():
        out = []
        for mode in ("bisect_all", "influence"):
            settings = RunnerSettings(
                reach=ReachSettings(substeps=10, max_symbolic_states=5),
                refinement=_policy(mode),
            )
            total_cov = 0.0
            total_nodes = 0
            for box, command in failing_cells:
                result = verify_cell(tiny_system, box, command, settings)
                total_cov += result.coverage_fraction()
                total_nodes += _count_nodes(result)
            out.append((mode, total_cov / len(failing_cells), total_nodes))
        return out

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nRefinement-strategy ablation (failing cells):")
        for mode, cov, nodes in rows:
            print(f"  {mode:10s} coverage recovered {100 * cov:5.1f}% "
                  f"using {nodes} reachability runs")
    # Refinement must recover nonzero coverage under at least one mode.
    assert max(cov for _m, cov, _n in rows) > 0.0
