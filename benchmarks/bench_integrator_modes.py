"""Ablation A4 — validated-simulation engines.

Compares the generic interval Taylor integrator (the DynIBEX-substitute
the procedure would use for an arbitrary plant) against the ACAS Xu
closed-form analytic flow, in runtime and enclosure tightness, over one
control period from a partition cell.
"""

import pytest

from repro.acasxu import ACASXU_ODE, AcasXuAnalyticFlow, initial_cell
from repro.intervals import Interval
from repro.ode import IntegratorSettings, MeanValueIntegrator, TaylorIntegrator


@pytest.fixture(scope="module")
def cell_and_command(tiny_system):
    box = initial_cell(Interval(0.35, 0.36), Interval(0.20, 0.21))
    return box, tiny_system.commands.value(4)


@pytest.mark.parametrize(
    "mode", ["analytic", "taylor-o3", "taylor-o5", "taylor-o8", "meanvalue-o5"]
)
def test_integrator_throughput(benchmark, cell_and_command, mode):
    box, u = cell_and_command
    if mode == "analytic":
        integrator = AcasXuAnalyticFlow()
    elif mode.startswith("meanvalue"):
        order = int(mode.split("-o")[1])
        integrator = MeanValueIntegrator(ACASXU_ODE, IntegratorSettings(order=order))
    else:
        order = int(mode.split("-o")[1])
        integrator = TaylorIntegrator(ACASXU_ODE, IntegratorSettings(order=order))

    pipe = benchmark(integrator.integrate, 0.0, 1.0, box, u, 10)
    hull = pipe.enclosure()
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["tube_xy_area_ft2"] = float(hull.widths[0] * hull.widths[1])
    benchmark.extra_info["end_max_width"] = float(pipe.end_box.max_width)


def test_integrators_mutually_consistent(benchmark, cell_and_command):
    """Both engines are sound, so their enclosures must overlap; the
    endpoint boxes must both contain the high-accuracy reference."""
    import numpy as np
    from scipy.integrate import solve_ivp

    from repro.acasxu import acasxu_rhs

    box, u = cell_and_command
    analytic = benchmark(AcasXuAnalyticFlow().integrate, 0.0, 1.0, box, u, 10)
    taylor = TaylorIntegrator(ACASXU_ODE, IntegratorSettings(order=5)).integrate(
        0.0, 1.0, box, u, 10
    )
    reference = solve_ivp(
        lambda t, s: acasxu_rhs(t, s, u),
        (0.0, 1.0),
        box.center,
        rtol=1e-11,
        atol=1e-12,
    ).y[:, -1]
    assert analytic.end_box.contains_point(reference)
    assert taylor.end_box.contains_point(reference)
    assert analytic.end_box.overlaps(taylor.end_box)
    meanvalue = MeanValueIntegrator(
        ACASXU_ODE, IntegratorSettings(order=5)
    ).integrate(0.0, 1.0, box, u, 10)
    assert meanvalue.end_box.contains_point(reference)
    # The mean-value form never does worse than the direct Taylor form.
    assert meanvalue.end_box.volume() <= taylor.end_box.volume() * (1 + 1e-9)
