"""Cold vs warm ``repro check``: the content-hash analysis cache.

The soundness pass is meant to run pre-commit, so the warm path — every
file unchanged, facts and findings replayed from ``.repro`` — must be
substantially cheaper than a cold parse of the whole sound path. The
two benches here pin that down; ``test_warm_is_faster`` is the
regression guard (a broken world digest silently degrades every warm
run to a cold one).
"""

import time
from pathlib import Path

import pytest

from repro.analysis.cache import AnalysisCache
from repro.analysis.policy import load_policy
from repro.analysis.visitor import check_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
UNIVERSE = [str(REPO_ROOT / "src" / "repro")]


@pytest.fixture(scope="module")
def policy():
    return load_policy(REPO_ROOT / "pyproject.toml")


def test_check_cold(benchmark, policy):
    findings = benchmark(check_paths, UNIVERSE, policy, cache=None)
    benchmark.extra_info["findings"] = len(findings)


def test_check_warm(benchmark, policy, tmp_path):
    cache = AnalysisCache(tmp_path / "check-cache.json")
    check_paths(UNIVERSE, policy, cache=cache)
    findings = benchmark(check_paths, UNIVERSE, policy, cache=cache)
    benchmark.extra_info["findings"] = len(findings)
    benchmark.extra_info["cache_hits"] = cache.hits


def test_warm_is_faster(policy, tmp_path):
    cache = AnalysisCache(tmp_path / "check-cache.json")

    tick = time.perf_counter()
    cold = check_paths(UNIVERSE, policy, cache=cache)
    cold_elapsed = time.perf_counter() - tick

    tick = time.perf_counter()
    warm = check_paths(UNIVERSE, policy, cache=cache)
    warm_elapsed = time.perf_counter() - tick

    assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]
    assert warm_elapsed < cold_elapsed
