"""Ablation A1 — the join threshold Gamma (Section 6.4).

"The choice of the threshold Gamma allows a trade-off between accuracy
(large Gamma) and computational efficiency (small Gamma)." This bench
runs the same branching-heavy cell with Gamma in {5, 10, 20} and
records runtime and the amount of joining the heuristic performed.
"""

import pytest

from repro.core import ReachSettings, reach_from_box


@pytest.mark.parametrize("gamma", [5, 10, 20])
def test_gamma_tradeoff(benchmark, tiny_system, representative_cell, gamma):
    box, command = representative_cell
    settings = ReachSettings(
        substeps=10, max_symbolic_states=gamma, early_exit_on_unsafe=False
    )

    result = benchmark(reach_from_box, tiny_system, box, command, settings)
    benchmark.extra_info["gamma"] = gamma
    benchmark.extra_info["verdict"] = result.verdict.value
    benchmark.extra_info["joins_performed"] = result.joins_performed
    benchmark.extra_info["integrations"] = result.integrations


def test_larger_gamma_tracks_more_states(benchmark, tiny_system, representative_cell):
    """Larger Gamma keeps more symbolic states alive, i.e. performs more
    validated integrations — the "accuracy" side of the trade-off that
    the runtime numbers above price out."""
    box, command = representative_cell

    def integrations_for(gamma):
        result = reach_from_box(
            tiny_system,
            box,
            command,
            ReachSettings(
                substeps=10, max_symbolic_states=gamma, early_exit_on_unsafe=False
            ),
        )
        return result.integrations

    small = benchmark.pedantic(integrations_for, args=(5,), rounds=1, iterations=1)
    large = integrations_for(20)
    assert large >= small


def test_remark_3_lower_bound(benchmark, tiny_system, representative_cell):
    """Gamma below the command count is rejected (Remark 3)."""
    box, command = representative_cell

    def rejected():
        with pytest.raises(ValueError):
            reach_from_box(
                tiny_system, box, command, ReachSettings(max_symbolic_states=4)
            )
        return True

    assert benchmark(rejected)
