"""Fig. 9b — coverage and verification time per arc of initial positions.

Regenerates the right panel of Fig. 9 from the shared reference run:
coverage % and elapsed time grouped by arc, the hardest-region
structure, and the paper's symmetry observation (results ~symmetric
w.r.t. the x0 = 0 axis).
"""

import numpy as np

from repro.experiments import (
    fig9b_arc_profile,
    render_fig9b,
    symmetry_check,
)


def test_fig9b_aggregation_kernel(benchmark, reference_report):
    rows = benchmark(fig9b_arc_profile, reference_report)
    assert len(rows) == 16
    benchmark.extra_info["mean_coverage_percent"] = float(
        np.mean([r.coverage_percent for r in rows])
    )


def test_fig9b_profile(benchmark, reference_report, capsys):
    rows = fig9b_arc_profile(reference_report)
    text = benchmark(render_fig9b, rows)
    with capsys.disabled():
        print("\n" + text)

    coverages = np.array([r.coverage_percent for r in rows])
    times = np.array([r.elapsed_seconds for r in rows])
    # The paper's observation: coverage varies with approach direction
    # (hard regions exist) and harder arcs cost more verification time.
    assert coverages.max() > coverages.min(), "arc difficulty must vary"
    hard = times[coverages < np.median(coverages)]
    easy = times[coverages >= np.median(coverages)]
    if len(hard) and len(easy):
        assert hard.mean() >= easy.mean() * 0.8, (
            "unproved arcs trigger refinement and should not be cheaper "
            "than proved arcs"
        )


def test_fig9b_symmetry(benchmark, reference_report):
    """Fig. 9b's symmetry w.r.t. x0 = 0 (the encounter problem is
    mirror-symmetric; training/interpolation noise adds a few points)."""
    rows = fig9b_arc_profile(reference_report)
    sym = benchmark(symmetry_check, rows)
    assert sym.pairs >= 4
    assert sym.mean_abs_coverage_gap <= 60.0
