"""CI perf-regression gate.

Diffs a candidate run (latest ledger entry by default) against a
baseline record — normally the committed ``benchmarks/baseline.json``
— and exits non-zero when any phase slowed down beyond the threshold
or coverage dropped, so CI can block the merge:

    PYTHONPATH=src python benchmarks/regression.py \
        --baseline benchmarks/baseline.json --threshold 2.0

Exit codes: 0 = pass, 1 = input error (missing records and such),
2 = regression detected. This is a thin wrapper over
``repro compare``'s machinery (:mod:`repro.obs.regression`); it exists
as a standalone script so the CI gate does not depend on argv plumbing
in the main CLI.

Thresholds: committed baselines are recorded on one machine and
compared on another, so the CI default should be generous (2x) and the
absolute ``--min-seconds`` floor keeps sub-50ms phases out of the
verdict entirely. Refresh the baseline with
``python benchmarks/make_baseline.py`` whenever a deliberate perf
change moves the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "baseline.json"),
        help="baseline record (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--candidate",
        default="latest",
        help="candidate: run id, record path, or `latest[:kind]`",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="ledger directory (default: $REPRO_LEDGER or .repro/runs)",
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument("--min-seconds", type=float, default=0.05)
    parser.add_argument("--coverage-tolerance", type=float, default=0.0)
    args = parser.parse_args(argv)

    from repro.obs import compare_records, load_run, render_comparison

    try:
        baseline = load_run(args.baseline, root=args.ledger)
        candidate = load_run(args.candidate, root=args.ledger)
    except (FileNotFoundError, ValueError, json.JSONDecodeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    comparison = compare_records(
        baseline,
        candidate,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        coverage_tolerance=args.coverage_tolerance,
    )
    print(render_comparison(comparison))
    return 0 if comparison.ok else 2


if __name__ == "__main__":
    raise SystemExit(main())
