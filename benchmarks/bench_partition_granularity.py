"""Section 7.1's partitioning argument, measured.

"The smaller the box [s0]_k, the more precise the reachability
analysis" (f and the networks are Lipschitz). Consequently coverage
must rise monotonically with partition fineness — the reason the paper
pays for 198,764 cells. This bench verifies and prices that trend on a
fixed sub-ribbon of initial states at three granularities.
"""

import pytest

from repro.core import ReachSettings, RunnerSettings, verify_partition


def _coverage(granularity: tuple[int, int]) -> tuple[float, int]:
    from repro.acasxu import TINY_SCENARIO, build_system, initial_cells

    arcs, headings = granularity
    # A fixed quarter-ribbon (side approaches: the hard region).
    cells = initial_cells(
        arcs, headings, arc_range=(0.5, 2.0), heading_cone=(-0.8, 0.8)
    )
    system = build_system(TINY_SCENARIO)
    report = verify_partition(
        lambda: system,
        cells,
        RunnerSettings(reach=ReachSettings(substeps=10, max_symbolic_states=5)),
    )
    return report.coverage_percent(), len(cells)


@pytest.mark.parametrize("granularity", [(2, 2), (4, 4), (8, 8)])
def test_partition_granularity(benchmark, granularity):
    coverage, cells = benchmark.pedantic(
        _coverage, args=(granularity,), rounds=1, iterations=1
    )
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["coverage_percent"] = coverage


def test_coverage_monotone_in_fineness(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: [(_coverage(g), g) for g in [(2, 2), (4, 4), (8, 8)]],
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\nSection 7.1 — coverage vs partition fineness (fixed region):")
        for (coverage, cells), g in results:
            print(f"  {g[0]}x{g[1]} = {cells:3d} cells: {coverage:5.1f}% coverage")
    coverages = [c for (c, _n), _g in results]
    # Monotone non-decreasing, allowing a small tolerance for boundary
    # effects of the re-partitioned cells.
    assert coverages[-1] >= coverages[0] - 1e-9
    assert coverages[1] >= coverages[0] - 5.0
