"""Regenerate the committed perf baseline (``benchmarks/baseline.json``).

Runs the deterministic smoke campaign — tiny networks, an 8x3
partition, depth-1 refinement, one worker, the committed cache bank —
under a metrics recorder and writes the resulting
:class:`repro.obs.RunRecord` where the CI regression gate
(``benchmarks/regression.py``) expects it:

    PYTHONPATH=src python benchmarks/make_baseline.py

Everything about the campaign is fixed (partition shape, substeps M,
join bound Gamma, refinement depth, the cached network bank), so two
runs on the same machine produce the same verdicts and closely
comparable timings. Refresh after any deliberate perf change, and
commit the new file alongside it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
# The committed cache bank keeps the baseline deterministic (no retrain).
os.environ.setdefault("REPRO_CACHE", str(REPO_ROOT / ".cache"))
sys.path.insert(0, str(REPO_ROOT / "src"))


def build_baseline_record(arcs: int = 8, headings: int = 3):
    """Run the smoke campaign and fold it into a ledger record."""
    from repro.core import ReachSettings, RefinementPolicy, RunnerSettings
    from repro.experiments import ExperimentConfig, run_experiment
    from repro.acasxu import TINY_SCENARIO
    from repro.obs import Recorder, record_from_report, use_recorder

    config = ExperimentConfig(
        name="baseline-smoke",
        scenario=TINY_SCENARIO,
        num_arcs=arcs,
        num_headings=headings,
        runner=RunnerSettings(
            reach=ReachSettings(substeps=10, max_symbolic_states=5),
            refinement=RefinementPolicy(dims=(0, 1, 2), max_depth=1),
            workers=1,
            # Lockstep SoA waves — the same mode `repro verify` picks by
            # default for a serial, unbudgeted campaign, so the CI
            # regression gate compares like with like.
            batch_cells=True,
        ),
    )
    started = time.perf_counter()
    recorder = Recorder()
    with use_recorder(recorder):
        report = run_experiment(config)
    wall = time.perf_counter() - started
    return record_from_report(
        report,
        kind="baseline",
        config={
            "scenario": "tiny",
            "arcs": arcs,
            "headings": headings,
            "depth": 1,
            "substeps": 10,
            "gamma": 5,
            "workers": 1,
            "batch_cells": True,
        },
        wall_seconds=wall,
        extra={"generator": "benchmarks/make_baseline.py"},
    )


def main(argv: list[str] | None = None) -> int:
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(Path(__file__).parent / "baseline.json")
    )
    parser.add_argument("--arcs", type=int, default=8)
    parser.add_argument("--headings", type=int, default=3)
    args = parser.parse_args(argv)

    record = build_baseline_record(args.arcs, args.headings)
    with open(args.out, "w") as out:
        json.dump(record.to_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
    print(f"baseline written to {args.out}")
    print(record.summary_line())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
