"""Section 7.2 headline numbers: coverage c, n_d, runtime.

Times a complete (scaled) partition verification with the paper's
parameters (M = 10, Gamma = 5, 2^3-way split refinement) and reports
the coverage computed by the paper's formula
``c = 100/K0 * sum_d n_d / 8^d`` plus the extrapolation to the paper's
198,764-cell partition.
"""

from repro.core import (
    ReachSettings,
    RefinementPolicy,
    RunnerSettings,
    verify_partition,
)
from repro.experiments import headline, render_headline


def test_headline_partition_run(benchmark, capsys):
    from repro.acasxu import TINY_SCENARIO, build_system, initial_cells

    cells = initial_cells(8, 3)
    settings = RunnerSettings(
        reach=ReachSettings(substeps=10, max_symbolic_states=5),
        refinement=RefinementPolicy(dims=(0, 1, 2), max_depth=1),
        workers=1,
    )
    system = build_system(TINY_SCENARIO)

    report = benchmark.pedantic(
        verify_partition,
        args=(lambda: system, cells, settings),
        rounds=1,
        iterations=1,
    )
    data = headline(report)
    with capsys.disabled():
        print("\n" + render_headline(data))
    benchmark.extra_info["coverage_percent"] = data.coverage_percent
    benchmark.extra_info["proved_by_depth"] = {
        str(k): v for k, v in data.proved_by_depth.items()
    }
    benchmark.extra_info["paper_scale_estimate_days"] = data.paper_scale_estimate_days

    # The verification must achieve nonzero coverage, and the coverage
    # formula must reconcile with the per-depth counts.
    assert data.coverage_percent > 0.0
    reconstructed = 100.0 / len(cells) * sum(
        n / 8.0**d for d, n in data.proved_by_depth.items()
    )
    assert abs(reconstructed - data.coverage_percent) < 1e-9


def test_headline_formula_on_reference_run(benchmark, reference_report):
    """The recursive coverage and the closed-form n_d formula agree on
    the larger shared run too."""
    counts = benchmark(reference_report.proved_count_by_depth)
    closed_form = 100.0 / reference_report.total_cells * sum(
        n / 8.0**d for d, n in counts.items()
    )
    assert abs(closed_form - reference_report.coverage_percent()) < 1e-9
