"""K1 — SoA interval kernels: batched vs scalar on the three hot paths.

The lockstep reachability driver spends its time in three kernels:
the validated interval Taylor step (``Plant.flow_batch``), symbolic NN
propagation (``SymbolicPropagator.output_bounds_batch`` behind
``Controller.execute_abstract_batch``), and the reach-set join
(``resize`` + ``Box.hull``). Each bench here runs the batched kernel
and its scalar per-row equivalent over the same inputs, records both
timings, and asserts bitwise-identical outputs — the contract the
whole ``batch_cells`` mode rests on.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core import ReachSettings
from repro.core.symbolic import SymbolicSet, SymbolicState, resize
from repro.intervals import Box, BoxBatch


def _wave_boxes(tiny_system, rows: int) -> tuple[list[Box], np.ndarray]:
    """A representative wave: perturbed copies of real initial cells."""
    from repro.acasxu import initial_cells

    cells = initial_cells(8, 3)
    boxes: list[Box] = []
    commands: list[int] = []
    for r in range(rows):
        box, command, _tags = cells[r % len(cells)]
        # Deterministic wobble so rows are distinct (memo can't collapse
        # them) while staying inside the scenario's plausible region.
        shift = 1e-3 * (r // len(cells))
        boxes.append(Box(box.lo + shift, box.hi + shift))
        commands.append(command)
    u_rows = np.stack(
        [tiny_system.commands.values[c] for c in commands]
    )
    return boxes, u_rows


@pytest.mark.parametrize("rows", [4, 16, 64])
def test_taylor_step_batch(benchmark, tiny_system, rows):
    """One control period of validated integration over a whole wave."""
    settings = ReachSettings(substeps=10, max_symbolic_states=5)
    boxes, u_rows = _wave_boxes(tiny_system, rows)
    batch = BoxBatch(
        np.stack([b.lo for b in boxes]), np.stack([b.hi for b in boxes])
    )
    plant = tiny_system.plant
    t1 = tiny_system.period

    pipes = benchmark(
        plant.flow_batch, 0.0, t1, batch, u_rows, settings.substeps
    )

    # Bitwise contract: every row matches the scalar integrator.
    for r in (0, rows // 2, rows - 1):
        pipe = plant.flow(0.0, t1, boxes[r], u_rows[r], settings.substeps)
        scalar_end = pipe.end_box
        batch_end = pipes.end_box(r)
        assert scalar_end.lo.tobytes() == batch_end.lo.tobytes()
        assert scalar_end.hi.tobytes() == batch_end.hi.tobytes()
    benchmark.extra_info["rows"] = rows


@pytest.mark.parametrize("rows", [4, 16, 64])
def test_nn_propagation_batch(benchmark, tiny_system, rows):
    """Symbolic bound propagation over a stack of normalized inputs."""
    boxes, _u = _wave_boxes(tiny_system, rows)
    controller = tiny_system.controller
    propagator = controller.propagators[0]
    x_boxes = [controller.pre.abstract(b) for b in boxes]
    lo = np.stack([b.lo for b in x_boxes])
    hi = np.stack([b.hi for b in x_boxes])

    out_lo, out_hi = benchmark(propagator.output_bounds_batch, lo, hi)

    for r in (0, rows - 1):
        s_lo, s_hi = propagator.output_bounds(x_boxes[r])
        assert s_lo.tobytes() == out_lo[r].tobytes()
        assert s_hi.tobytes() == out_hi[r].tobytes()
    benchmark.extra_info["rows"] = rows


@pytest.mark.parametrize("states", [8, 15, 30])
def test_join_resize(benchmark, tiny_system, states):
    """Algorithm 2 joins down to Gamma=5 from an oversized symbolic set."""
    boxes, _u = _wave_boxes(tiny_system, states)
    base = [
        SymbolicState(box, i % 3) for i, box in enumerate(boxes)
    ]

    def run():
        working = SymbolicSet(list(base))
        joins = resize(working, 5)
        return working, joins

    result, joins = benchmark(run)
    assert len(result) == 5
    assert joins == states - 5
    benchmark.extra_info["states"] = states
    benchmark.extra_info["joins"] = joins


def test_controller_execute_batch(benchmark, tiny_system):
    """End-to-end abstract controller execution over a 24-row wave,
    including the batched Pre# normalization (hypot + affine)."""
    boxes, _u = _wave_boxes(tiny_system, 24)
    commands = [i % 3 for i in range(len(boxes))]
    controller = tiny_system.controller

    def run():
        controller._memo.clear()
        return controller.execute_abstract_batch(boxes, commands)

    batch_out = benchmark(run)

    controller._memo.clear()
    scalar_out = [
        controller.execute_abstract(b, c) for b, c in zip(boxes, commands)
    ]
    assert batch_out == scalar_out
