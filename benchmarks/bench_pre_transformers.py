"""Ablation — Pre# abstract domains (interval vs affine arithmetic).

Section 6.6 implements Pre# with interval arithmetic and cites affine
arithmetic [15] as the alternative. Both are implemented; this bench
compares their runtime and the tightness of the polar-coordinate
conversion (the nonlinear part of the ACAS pre-processing).
"""

import numpy as np
import pytest

from repro.acasxu import AcasPre
from repro.intervals import Box


@pytest.fixture(scope="module")
def state_box():
    # A crossing-geometry box where rho/theta correlations matter.
    return Box(
        [2000.0, 3000.0, 1.0, 700.0, 600.0],
        [2600.0, 3800.0, 1.2, 700.0, 600.0],
    )


@pytest.mark.parametrize("mode", ["interval", "affine"])
def test_pre_transformer_throughput(benchmark, state_box, mode):
    pre = AcasPre(mode)
    out = benchmark(pre.abstract, state_box)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rho_width"] = float(out.widths[0])
    benchmark.extra_info["theta_width"] = float(out.widths[1])


def test_affine_at_least_as_tight(benchmark, state_box, capsys):
    interval_out = AcasPre("interval").abstract(state_box)
    affine_out = benchmark(AcasPre("affine").abstract, state_box)
    with capsys.disabled():
        print("\nPre# tightness (normalized rho/theta widths):")
        print(f"  interval: rho {interval_out.widths[0]:.5f}, "
              f"theta {interval_out.widths[1]:.5f}")
        print(f"  affine:   rho {affine_out.widths[0]:.5f}, "
              f"theta {affine_out.widths[1]:.5f}")
    for i in range(5):
        assert affine_out.widths[i] <= interval_out.widths[i] * (1 + 1e-9)


def test_both_modes_sound(benchmark, state_box):
    rng = np.random.default_rng(0)
    outs = benchmark(
        lambda: [AcasPre(m).abstract(state_box) for m in ("interval", "affine")]
    )
    concrete = AcasPre("interval")
    for s in state_box.sample(rng, 50):
        x = concrete.concrete(s)
        for out in outs:
            assert out.contains_point(x)
