"""Shared benchmark fixtures.

Heavy artefacts (the trained tiny network bank, a reference partition
verification run) are built once per session and shared by every bench,
so ``pytest benchmarks/ --benchmark-only`` stays laptop-friendly while
still regenerating every figure of the paper.
"""

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_CACHE", str(Path(__file__).resolve().parents[1] / ".cache"))


@pytest.fixture(scope="session")
def tiny_system():
    from repro.acasxu import TINY_SCENARIO, build_system

    return build_system(TINY_SCENARIO)


@pytest.fixture(scope="session")
def reference_report():
    """A shared Fig. 9 partition run (16 arcs x 4 headings, depth 1)."""
    from repro.core import ReachSettings, RefinementPolicy, RunnerSettings
    from repro.experiments import ExperimentConfig, run_experiment

    from repro.acasxu import TINY_SCENARIO

    config = ExperimentConfig(
        name="bench-reference",
        scenario=TINY_SCENARIO,
        num_arcs=16,
        num_headings=4,
        runner=RunnerSettings(
            reach=ReachSettings(substeps=10, max_symbolic_states=5),
            refinement=RefinementPolicy(dims=(0, 1, 2), max_depth=1),
            workers=4,
        ),
    )
    return run_experiment(config)


@pytest.fixture(scope="session")
def representative_cell():
    """An initial cell that exercises branching without being trivial."""
    from repro.acasxu import initial_cells

    cells = initial_cells(16, 4)
    # A side-approach arc: the paper's "hardest" region.
    box, command, _tags = cells[4 * 4 + 1]
    return box, command
