"""Shared benchmark fixtures.

Heavy artefacts (the trained tiny network bank, a reference partition
verification run) are built once per session and shared by every bench,
so ``pytest benchmarks/ --benchmark-only`` stays laptop-friendly while
still regenerating every figure of the paper.
"""

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_CACHE", str(Path(__file__).resolve().parents[1] / ".cache"))


@pytest.fixture(scope="session")
def tiny_system():
    from repro.acasxu import TINY_SCENARIO, build_system

    return build_system(TINY_SCENARIO)


@pytest.fixture(scope="session")
def reference_report():
    """A shared Fig. 9 partition run (16 arcs x 4 headings, depth 1)."""
    from repro.core import ReachSettings, RefinementPolicy, RunnerSettings
    from repro.experiments import ExperimentConfig, run_experiment

    from repro.acasxu import TINY_SCENARIO

    config = ExperimentConfig(
        name="bench-reference",
        scenario=TINY_SCENARIO,
        num_arcs=16,
        num_headings=4,
        runner=RunnerSettings(
            reach=ReachSettings(substeps=10, max_symbolic_states=5),
            refinement=RefinementPolicy(dims=(0, 1, 2), max_depth=1),
            workers=4,
        ),
    )
    return run_experiment(config)


@pytest.fixture(scope="session")
def representative_cell():
    """An initial cell that exercises branching without being trivial."""
    from repro.acasxu import initial_cells

    cells = initial_cells(16, 4)
    # A side-approach arc: the paper's "hardest" region.
    box, command, _tags = cells[4 * 4 + 1]
    return box, command


@pytest.fixture
def phase_breakdown(request):
    """Run a callable under a metrics-only recorder and return
    ``(result, phases)``, where ``phases`` maps span names to
    ``{total_s, count, p50_s, p95_s}``. Benches attach this to
    ``benchmark.extra_info`` so BENCH_*.json entries carry a per-phase
    time breakdown alongside the headline number.

    Each instrumented run is also appended to the run ledger (kind
    ``benchmark``, named after the test), so the bench trajectory is
    durable and ``repro report`` / ``repro compare`` can track it
    across sessions. Best-effort: a read-only checkout never fails the
    bench.
    """
    import time

    from repro.obs import (
        Recorder,
        RunRecord,
        git_revision,
        new_run_id,
        phases_from_metrics,
        record_run,
        use_recorder,
    )

    def run(fn, *args, **kwargs):
        recorder = Recorder()
        started = time.perf_counter()
        with use_recorder(recorder):
            result = fn(*args, **kwargs)
        wall = time.perf_counter() - started
        snapshot = recorder.metrics.snapshot()
        phases = {
            name[: -len(".seconds")]: {
                "total_s": hist["sum"],
                "count": hist["count"],
                "p50_s": hist["p50"],
                "p95_s": hist["p95"],
            }
            for name, hist in snapshot["histograms"].items()
            if name.endswith(".seconds")
        }
        counters = snapshot["counters"]
        record = RunRecord(
            run_id=new_run_id("benchmark"),
            kind="benchmark",
            started_at=time.time(),
            wall_seconds=wall,
            git_sha=git_revision(),
            config={"bench": request.node.name},
            phases=phases_from_metrics(snapshot),
            counters=dict(counters),
            extra={"nodeid": request.node.nodeid},
        )
        try:
            record_run(record)
        except OSError:
            pass
        return result, {"phases": phases, "counters": counters}

    return run
