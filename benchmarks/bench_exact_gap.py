"""Ablation — sound-incomplete domains vs the complete LP verifier.

Section 2's trade-off, measured: complete methods (Reluplex-style) are
exact but exponential; abstract interpretation is polynomial but
over-approximates. On a small distilled network we compute the exact
output range by activation-pattern enumeration + LP and price each
abstract domain's over-approximation factor and speedup.
"""

import numpy as np
import pytest

from repro.intervals import Box
from repro.nn import Network, TrainingConfig, train_regression
from repro.verify import (
    SymbolicPropagator,
    exact_output_range,
    tightness_gap,
)


@pytest.fixture(scope="module")
def small_net():
    """A small trained network (structure like a distilled controller)."""
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(2000, 2))
    y = np.column_stack([np.abs(x[:, 0]) + x[:, 1], x[:, 0] * x[:, 1]])
    net = Network.random([2, 8, 8, 2], rng)
    train_regression(net, x, y, TrainingConfig(epochs=60, seed=0))
    return net


@pytest.fixture(scope="module")
def input_box():
    return Box([-0.6, -0.6], [0.6, 0.6])


def test_exact_range_throughput(benchmark, small_net, input_box):
    result = benchmark.pedantic(
        exact_output_range, args=(small_net, input_box), rounds=2, iterations=1
    )
    assert result.complete
    benchmark.extra_info["method"] = "complete (LP enumeration)"
    benchmark.extra_info["patterns"] = result.patterns_explored
    benchmark.extra_info["lps"] = result.lps_solved


def test_symbolic_throughput(benchmark, small_net, input_box):
    propagator = SymbolicPropagator(small_net)
    out = benchmark(propagator, input_box)
    benchmark.extra_info["method"] = "sound-incomplete (symbolic intervals)"
    benchmark.extra_info["max_width"] = float(out.max_width)


def test_overapproximation_factors(benchmark, small_net, input_box, capsys):
    gaps = benchmark.pedantic(
        tightness_gap, args=(small_net, input_box), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\nOver-approximation factor vs exact range (1.0 = exact):")
        for name, ratio in sorted(gaps.items(), key=lambda kv: kv[1]):
            print(f"  {name:9s} {ratio:6.2f}x")
    assert all(ratio >= 1.0 - 1e-6 for ratio in gaps.values())
