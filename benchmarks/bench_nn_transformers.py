"""Ablation A2 — the network abstract transformer F#.

The paper builds F# on ReluVal's symbolic interval propagation
(Section 6.6). This bench compares the four implemented domains on the
trained ACAS networks — plain interval propagation (IBP), ReluVal-style
symbolic intervals, DeepPoly-style slope relaxation, AI2-style
zonotopes — in both runtime and output tightness.
"""

import numpy as np
import pytest

from repro.intervals import Box
from repro.verify import IntervalPropagator, SymbolicPropagator, ZonotopePropagator


def _input_box(tiny_system):
    """A pre-processed controller input box (normalized units)."""
    from repro.acasxu import AcasPre

    state_box = Box(
        [-400.0, 6500.0, 2.8, 700.0, 600.0],
        [400.0, 7500.0, 3.2, 700.0, 600.0],
    )
    return AcasPre().abstract(state_box)


def _propagator(kind, network):
    if kind == "ibp":
        return IntervalPropagator(network)
    if kind == "zonotope":
        return ZonotopePropagator(network)
    return SymbolicPropagator(network, kind)


@pytest.mark.parametrize("kind", ["ibp", "reluval", "deeppoly", "zonotope"])
def test_transformer_throughput(benchmark, tiny_system, kind):
    network = tiny_system.controller.networks[0]
    box = _input_box(tiny_system)
    propagator = _propagator(kind, network)

    out = benchmark(propagator, box)
    benchmark.extra_info["domain"] = kind
    benchmark.extra_info["max_output_width"] = float(out.max_width)


def test_symbolic_tighter_than_ibp(benchmark, tiny_system, capsys):
    network = tiny_system.controller.networks[0]
    box = _input_box(tiny_system)

    def all_widths():
        return {
            kind: float(_propagator(kind, network)(box).max_width)
            for kind in ("ibp", "reluval", "deeppoly", "zonotope")
        }

    widths = benchmark(all_widths)
    with capsys.disabled():
        print("\nA2 — F# output widths on an ACAS input box:")
        for kind, width in widths.items():
            print(f"  {kind:9s} {width:.4f}")
    assert widths["reluval"] <= widths["ibp"]
    assert widths["deeppoly"] <= widths["ibp"]
    assert widths["zonotope"] <= widths["ibp"]


def test_all_domains_agree_on_soundness(benchmark, tiny_system):
    """Every domain's output contains the concrete network outputs."""
    network = tiny_system.controller.networks[0]
    box = _input_box(tiny_system)
    rng = np.random.default_rng(0)
    outputs = benchmark(
        lambda: [
            _propagator(k, network)(box)
            for k in ("ibp", "reluval", "deeppoly", "zonotope")
        ]
    )
    for x in box.sample(rng, 50):
        y = network.forward(x)
        for out in outputs:
            assert out.contains_point(y)
