"""Fig. 9a — the map of initial states proved safe / not proved.

Regenerates the left panel of Fig. 9 on the scaled partition: renders
the per-(arc, heading) verdict map from the shared reference run, and
times the per-cell kernel (one full Algorithm 3 run from one initial
cell) that the map is made of.
"""

from repro.core import ReachSettings, reach_from_box
from repro.experiments import fig9a_grid, render_fig9a


def test_fig9a_cell_kernel(benchmark, tiny_system, representative_cell):
    box, command = representative_cell
    settings = ReachSettings(substeps=10, max_symbolic_states=5)

    result = benchmark(reach_from_box, tiny_system, box, command, settings)
    benchmark.extra_info["verdict"] = result.verdict.value
    benchmark.extra_info["steps_completed"] = result.steps_completed


def test_fig9a_map(benchmark, reference_report, capsys):
    grid = fig9a_grid(reference_report)
    assert len(grid) == reference_report.total_cells
    text = benchmark(render_fig9a, reference_report)
    with capsys.disabled():
        print("\n" + text)

    proved = sum(1 for v in grid.values() if v >= 0.999)
    mixed = sum(1 for v in grid.values() if 0.0 < v < 0.999)
    # The paper's map has both colors; so must ours.
    assert proved > 0, "some initial cells must be provable"
    assert proved + mixed < len(grid) or proved < len(grid), (
        "a fully-green map would mean the scaled experiment lost the "
        "hard region structure of Fig. 9a"
    )
