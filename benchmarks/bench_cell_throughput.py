"""A5 — per-cell verification throughput and the paper-scale estimate.

The paper's run took ~12 days for 198,764 cells on 2x12 Xeon cores.
This bench measures our per-cell latency across easy (quick
termination), hard (long horizon, heavy branching), and refined cells,
and extrapolates to the paper's partition size.
"""

import pytest

from repro.core import (
    ReachSettings,
    RefinementPolicy,
    RunnerSettings,
    verify_cell,
)


@pytest.fixture(scope="module")
def cells(tiny_system):
    from repro.acasxu import initial_cells

    all_cells = initial_cells(16, 4)
    # Departing geometry (terminates fast), side approach (the paper's
    # hard region) and head-on (heavy branching).
    return {
        "easy-departing": all_cells[0],
        "hard-side-approach": all_cells[4 * 4 + 2],
        "hard-head-on": all_cells[8 * 4 + 2],
    }


@pytest.mark.parametrize("kind", ["easy-departing", "hard-side-approach", "hard-head-on"])
def test_cell_latency(benchmark, tiny_system, cells, kind, phase_breakdown):
    box, command, _tags = cells[kind]
    settings = RunnerSettings(
        reach=ReachSettings(substeps=10, max_symbolic_states=5)
    )

    result = benchmark(verify_cell, tiny_system, box, command, settings)
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["verdict"] = result.verdict.value
    benchmark.extra_info["paper_scale_days_at_this_rate"] = (
        benchmark.stats.stats.mean * 198_764 / 86_400.0
        if benchmark.stats is not None
        else None
    )
    # One instrumented rerun so the BENCH json carries the per-phase
    # breakdown (integrate / controller / join / ...) behind the number.
    _, breakdown = phase_breakdown(verify_cell, tiny_system, box, command, settings)
    benchmark.extra_info["phases"] = breakdown["phases"]


def test_refined_cell_latency(benchmark, tiny_system, cells):
    """Worst case: a failing cell paying the full 8-way refinement."""
    box, command, _tags = cells["hard-head-on"]
    settings = RunnerSettings(
        reach=ReachSettings(substeps=10, max_symbolic_states=5),
        refinement=RefinementPolicy(dims=(0, 1, 2), max_depth=1),
    )
    result = benchmark.pedantic(
        verify_cell, args=(tiny_system, box, command, settings), rounds=2, iterations=1
    )
    benchmark.extra_info["children"] = len(result.children)
