"""Fig. 7 — enclosure tightness vs integration substeps M.

Regenerates the Section 6.4 precision-optimization figure: validated
simulation of one control period with M in {1, 2, 4, 10}. The timed
kernel is the M-substep validated integration (Algorithm 1's core); the
figure data (tube area per M) is attached as ``extra_info`` and the
shrinking-area property is asserted.
"""

import pytest

from repro.experiments import fig7_substep_ablation, render_fig7
from repro.intervals import Interval


@pytest.fixture(scope="module")
def fig7_rows(tiny_system):
    return fig7_substep_ablation(tiny_system, substep_values=(1, 2, 4, 10))


@pytest.mark.parametrize("substeps", [1, 2, 4, 10])
def test_fig7_validated_simulation(benchmark, tiny_system, substeps):
    from repro.acasxu import initial_cell

    box = initial_cell(Interval(0.35, 0.40), Interval(0.20, 0.25))
    u = tiny_system.commands.value(4)

    pipe = benchmark(
        tiny_system.plant.flow, 0.0, tiny_system.period, box, u, substeps
    )
    hull = pipe.enclosure()
    benchmark.extra_info["tube_xy_area_ft2"] = float(hull.widths[0] * hull.widths[1])
    benchmark.extra_info["substeps"] = substeps


def test_fig7_area_shrinks_with_substeps(benchmark, fig7_rows, capsys):
    text = benchmark(render_fig7, fig7_rows)
    with capsys.disabled():
        print("\n" + text)
    areas = [row.tube_xy_area for row in fig7_rows]
    assert areas == sorted(areas, reverse=True), (
        "the flow tube must tighten monotonically with M (Fig. 7)"
    )
    # The paper's illustration shows a substantial gain; require >= 1.5x.
    assert areas[0] / areas[-1] > 1.5
